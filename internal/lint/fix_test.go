package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dataai/internal/lint"
)

// TestApplyFixesDeletesStaleIgnore drives the suppression audit through
// the fix engine end to end: stale //lint:ignore directives (one on its
// own line, one trailing code) are reported by RunAudited with deletion
// fixes, ApplyFixes removes exactly the comments, and a second audited
// run over the rewritten tree is clean — the tool is idempotent.
func TestApplyFixesDeletesStaleIgnore(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module tmp\n\ngo 1.22\n",
		"c/c.go": `package c

//lint:ignore floateq the finding this justified is long gone
func Eq(a, b int) bool { return a == b }

func Sub(a int) int {
	return a - 1 //lint:ignore nondeterminism historical
}
`,
	})

	audit := func() []lint.Diagnostic {
		pkgs, err := lint.Load(dir, "./...")
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		return lint.RunAudited(pkgs, lint.Analyzers())
	}

	diags := audit()
	if len(diags) != 2 {
		t.Fatalf("RunAudited = %v, want two staleignore findings", diags)
	}
	for _, d := range diags {
		if d.Check != "staleignore" || len(d.SuggestedFixes) == 0 {
			t.Fatalf("finding %s lacks check/fix", d)
		}
	}

	res, err := lint.ApplyFixes(diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if res.Applied != 2 || res.Skipped != 0 || len(res.Files) != 1 {
		t.Fatalf("FixResult = %+v, want 2 applied to one file", res)
	}

	src, err := os.ReadFile(filepath.Join(dir, "c", "c.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(src), "lint:ignore") {
		t.Errorf("directives survived the fix:\n%s", src)
	}
	if !strings.Contains(string(src), "func Eq(a, b int) bool { return a == b }") {
		t.Errorf("code around the standalone directive was damaged:\n%s", src)
	}
	if !strings.Contains(string(src), "return a - 1\n") {
		t.Errorf("code before the trailing directive was damaged:\n%s", src)
	}

	if diags := audit(); len(diags) != 0 {
		t.Errorf("second audited run not clean: %v", diags)
	}
	// And the fix path itself is a no-op on a clean tree.
	res, err = lint.ApplyFixes(nil)
	if err != nil || res.Applied != 0 || len(res.Files) != 0 {
		t.Errorf("ApplyFixes on clean tree = %+v, %v; want zero-value no-op", res, err)
	}
}

// TestApplyFixesInsertsNilGuard drives obsguard's suggested fix through
// the engine: the inserted guard compiles, satisfies the analyzer on
// the next run, and the rewritten file is gofmt-clean (ApplyFixes
// formats Go files after splicing).
func TestApplyFixesInsertsNilGuard(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module tmp\n\ngo 1.22\n",
		"internal/obs/p.go": `package obs

// Probe is nil when disabled.
type Probe struct{ n int }

// Count forgot its guard.
func (p *Probe) Count() int {
	return p.n
}
`,
	})

	run := func() []lint.Diagnostic {
		pkgs, err := lint.Load(dir, "./...")
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		return lint.Run(pkgs, []*lint.Analyzer{lint.Lookup("obsguard")})
	}

	diags := run()
	if len(diags) != 1 || len(diags[0].SuggestedFixes) == 0 {
		t.Fatalf("obsguard = %v, want one fixable finding", diags)
	}
	if _, err := lint.ApplyFixes(diags); err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}

	src, err := os.ReadFile(filepath.Join(dir, "internal", "obs", "p.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "if p == nil {\n\t\treturn 0\n\t}") {
		t.Errorf("guard not inserted as expected:\n%s", src)
	}
	if diags := run(); len(diags) != 0 {
		t.Errorf("obsguard still fires after its own fix: %v", diags)
	}
}
