package lint

import (
	"go/types"
)

// The walltaint analyzer is the interprocedural half of the determinism
// gate. The nondeterminism analyzer flags wall-clock and global-rand
// calls *written inside* seeded packages — which means a one-line
// wrapper in any other package launders them straight past it:
//
//	package util
//	func StampNow() int64 { return time.Now().UnixNano() }   // not seeded: allowed
//
//	package sim
//	ev.at = util.StampNow()                                   // laundered taint
//
// walltaint closes the hole with object facts over the module call
// graph: every function that calls a nondeterminism source — directly or
// through any chain of static calls, in any package — carries a
// WallTaint fact recording one witness path to the source. Any call site
// inside a seeded package (the same scope list the nondeterminism
// analyzer protects: experiments, faults, llm, obs, resilient, serving,
// sim, training) whose callee carries the fact is flagged, with the
// witness chain spelled out in the message.
//
// Sources are the wall clock (time.Now/Since/Until), the process-seeded
// global math/rand and math/rand/v2 functions (constructors excepted),
// and the scheduler/process identity reads used for goroutine-ID tricks
// (runtime.NumGoroutine, runtime.Stack, os.Getpid). Direct source calls
// are left to the nondeterminism analyzer — walltaint only reports calls
// to module-local functions, so each laundering chain yields exactly one
// finding per crossing call site.
//
// Propagation is an under-approximation by construction (see
// callgraph.go): calls through stored function values produce no edge,
// so every reported path is a real static call chain.

// WallTaint is the exported fact: the function transitively reaches a
// nondeterminism source via Path ("util.StampNow → time.Now").
type WallTaint struct {
	// Source is the root source, e.g. "time.Now".
	Source string
	// Path is the witness chain from the tainted function to Source.
	Path string
}

// AFact marks WallTaint as a fact type.
func (*WallTaint) AFact() {}

func init() {
	Register(&Analyzer{
		Name:      "walltaint",
		Doc:       "calls in seeded packages that transitively reach wall-clock/global-rand sources through any package",
		Run:       runWallTaint,
		FactTypes: []Fact{(*WallTaint)(nil)},
	})
}

// taintSource names the nondeterminism source a stdlib function is, or
// "" when it is none.
func taintSource(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	name := fn.Name()
	switch pkg.Path() {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			return "time." + name
		}
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand are seeded; only package-level calls to
		// the global generator are sources.
		if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[name] {
			return "rand." + name
		}
	case "runtime":
		if name == "NumGoroutine" || name == "Stack" {
			return "runtime." + name
		}
	case "os":
		if name == "Getpid" {
			return "os." + name
		}
	}
	return ""
}

func runWallTaint(pass *Pass) {
	p := pass.Pkg
	g := BuildCallGraph([]*Package{p})

	// Seed and propagate taint over the package-local graph. taint maps
	// each local function to its witness fact; imported facts cover
	// callees in other packages. Edges are scanned repeatedly until no
	// new function gains taint — the edge list is in deterministic
	// source order, and the first taint a function gains wins, so the
	// witness chains are reproducible run to run.
	taint := map[*types.Func]*WallTaint{}
	lookup := func(fn *types.Func) *WallTaint {
		if t, ok := taint[fn]; ok {
			return t
		}
		var imported WallTaint
		if pass.ImportObjectFact(fn, &imported) {
			taint[fn] = &imported
			return &imported
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, e := range g.Edges {
			if e.Caller == nil || taint[e.Caller] != nil {
				continue
			}
			if src := taintSource(e.Callee); src != "" {
				taint[e.Caller] = &WallTaint{Source: src, Path: funcDisplayName(e.Caller) + " → " + src}
				changed = true
				continue
			}
			if t := lookup(e.Callee); t != nil {
				taint[e.Caller] = &WallTaint{
					Source: t.Source,
					Path:   funcDisplayName(e.Caller) + " → " + t.Path,
				}
				changed = true
			}
		}
	}

	// Export facts for functions this package defines.
	for fn, t := range taint {
		if fn.Pkg() != nil && p.Types != nil && fn.Pkg() == p.Types {
			pass.ExportObjectFact(fn, t)
		}
	}

	if !inSeededPackage(p.ImportPath) {
		return
	}
	// Report each call site whose callee is a tainted module-local
	// function. Direct source calls are the nondeterminism analyzer's
	// findings, not ours.
	for _, e := range g.Edges {
		if taintSource(e.Callee) != "" {
			continue
		}
		t := lookup(e.Callee)
		if t == nil {
			continue
		}
		pass.Reportf(e.Pos,
			"call to %s reaches %s (%s); seeded code must not depend on wall clock, global rand, or process identity — inject a clock/seeded source instead",
			funcDisplayName(e.Callee), t.Source, t.Path)
	}
}
