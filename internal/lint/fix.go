package lint

import (
	"fmt"
	"go/format"
	"os"
	"sort"
	"strings"
)

// TextEdit is one byte-range replacement in a file: the half-open range
// [Start, End) is replaced by NewText. Offsets refer to the file as it
// was when the diagnostic was produced. An empty NewText deletes the
// range; Start == End inserts.
type TextEdit struct {
	Filename   string
	Start, End int
	NewText    string
}

// SuggestedFix is one machine-applicable repair for a diagnostic: a
// short description and the edits that perform it. Edits within one fix
// are applied atomically.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// FixResult reports what ApplyFixes did.
type FixResult struct {
	// Applied counts diagnostics whose fix was applied.
	Applied int
	// Skipped counts diagnostics whose fix conflicted with an
	// already-accepted edit and was dropped; rerunning the tool after
	// the first batch picks them up.
	Skipped int
	// Files lists every rewritten file, sorted.
	Files []string
}

// ApplyFixes applies the first suggested fix of every diagnostic that
// carries one, rewriting the affected files in place. Edits are applied
// per file in ascending offset order; a fix any of whose edits overlaps
// an edit already accepted for that file is skipped whole (the next run
// of the tool sees the updated offsets and applies it cleanly), so
// repeated runs converge: a tree with no findings is never modified,
// which is what makes `dataailint -fix` idempotent.
//
// Rewritten Go files are passed through go/format, so applying fixes
// never introduces a gofmt diff.
func ApplyFixes(diags []Diagnostic) (FixResult, error) {
	type edit struct {
		TextEdit
		fix int // index of the owning fix, for all-or-nothing skipping
	}
	perFile := map[string][]edit{}
	fixID := 0
	total := 0
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		total++
		for _, e := range d.SuggestedFixes[0].Edits {
			perFile[e.Filename] = append(perFile[e.Filename], edit{TextEdit: e, fix: fixID})
		}
		fixID++
	}
	if total == 0 {
		return FixResult{}, nil
	}

	skippedFix := map[int]bool{}
	accepted := map[string][]edit{}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		edits := perFile[f]
		sort.SliceStable(edits, func(i, j int) bool { return edits[i].Start < edits[j].Start })
		end := -1
		for _, e := range edits {
			if e.Start > e.End || e.Start < 0 {
				skippedFix[e.fix] = true
				continue
			}
			if e.Start < end { // overlaps the previous accepted edit
				skippedFix[e.fix] = true
				continue
			}
			accepted[f] = append(accepted[f], e)
			if e.End > end {
				end = e.End
			}
		}
	}

	res := FixResult{}
	for _, f := range files {
		var keep []edit
		for _, e := range accepted[f] {
			if !skippedFix[e.fix] {
				keep = append(keep, e)
			}
		}
		if len(keep) == 0 {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			return res, fmt.Errorf("lint: applying fixes: %w", err)
		}
		var b strings.Builder
		last := 0
		bad := false
		for _, e := range keep {
			if e.End > len(src) {
				bad = true
				break
			}
			b.WriteString(string(src[last:e.Start]))
			b.WriteString(e.NewText)
			last = e.End
		}
		if bad {
			// Stale offsets (file changed since analysis): leave it alone.
			continue
		}
		b.WriteString(string(src[last:]))
		out := []byte(b.String())
		if strings.HasSuffix(f, ".go") {
			if formatted, err := format.Source(out); err == nil {
				out = formatted
			}
		}
		if err := os.WriteFile(f, out, 0o644); err != nil {
			return res, fmt.Errorf("lint: applying fixes: %w", err)
		}
		res.Files = append(res.Files, f)
	}
	res.Skipped = len(skippedFix)
	res.Applied = total - res.Skipped
	return res, nil
}
