package lint_test

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"dataai/internal/lint"
)

func sampleDiags() []lint.Diagnostic {
	return []lint.Diagnostic{
		{
			Check:   "floateq",
			Pos:     token.Position{Filename: "/repo/internal/sim/sim.go", Line: 12, Column: 5},
			Message: "float equality",
		},
		{
			Check:   "staleignore",
			Pos:     token.Position{Filename: "/elsewhere/x.go", Line: 3, Column: 1},
			Message: "dead directive",
			SuggestedFixes: []lint.SuggestedFix{
				{Message: "delete", Edits: []lint.TextEdit{{Filename: "/elsewhere/x.go"}}},
			},
		},
	}
}

// TestWriteJSON pins the -json wire form: relative paths inside the
// base dir, absolute outside it, and the fixable marker.
func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := lint.WriteJSON(&b, "/repo", sampleDiags()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got []struct {
		Check   string `json:"check"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Fixable bool   `json:"fixable"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if got[0].File != "internal/sim/sim.go" || got[0].Line != 12 || got[0].Fixable {
		t.Errorf("first record = %+v, want relative path, line 12, not fixable", got[0])
	}
	if got[1].File != "/elsewhere/x.go" || !got[1].Fixable {
		t.Errorf("second record = %+v, want absolute outside-base path and fixable", got[1])
	}
}

// TestWriteSARIF pins the SARIF envelope: schema/version, a rule per
// analyzer plus staleignore, and result locations with line/column.
func TestWriteSARIF(t *testing.T) {
	var b strings.Builder
	if err := lint.WriteSARIF(&b, "/repo", lint.Analyzers(), sampleDiags()); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(b.String()), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("envelope = %s %s, want SARIF 2.1.0", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "dataailint" {
		t.Errorf("driver = %q, want dataailint", run.Tool.Driver.Name)
	}
	if want := len(lint.Analyzers()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d (analyzers + staleignore)", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/sim/sim.go" || loc.Region.StartLine != 12 {
		t.Errorf("first location = %+v, want internal/sim/sim.go:12", loc)
	}
}
