package par

import (
	"fmt"
	"testing"
)

// BenchmarkParMapOverhead measures the fixed cost of the fan-out
// machinery against a serial loop on trivially small work items — the
// worst case for any pool. Run with the rest of the Par benchmarks:
//
//	go test -bench=Par -benchtime=1x ./...
func BenchmarkParMapOverhead(b *testing.B) {
	const n = 4096
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := Map(n, workers, func(i int) int { return i * 31 })
				if out[n-1] != (n-1)*31 {
					b.Fatal("bad result")
				}
			}
		})
	}
}

// BenchmarkParReduceSum measures the sharded-reduce helper on an
// integer-sum workload, the shape vecdb's DistComps accounting uses.
func BenchmarkParReduceSum(b *testing.B) {
	const n = 1 << 16
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got := Reduce(n, workers,
					func(_, lo, hi int) uint64 {
						var s uint64
						for j := lo; j < hi; j++ {
							s += uint64(j)
						}
						return s
					},
					func(acc, part uint64) uint64 { return acc + part })
				if got != uint64(n)*uint64(n-1)/2 {
					b.Fatal("bad sum")
				}
			}
		})
	}
}
