// Package par provides the deterministic parallel execution primitives
// the hot paths of this repository fan out on: a bounded worker pool
// sized from GOMAXPROCS, an ordered-commit Map, a contiguous-chunk
// MapChunks, and a sharded Reduce whose merge order is fixed by shard
// index.
//
// The repository's determinism contract (EXPERIMENTS.md, the benchall
// golden output, the nondeterminism analyzer in internal/lint) requires
// that parallelism never changes results: the same inputs must produce
// byte-identical outputs at any worker count, including 1. Every
// primitive here is deterministic *by construction*, not by luck:
//
//   - Map(n, workers, fn) runs fn(i) on up to `workers` goroutines but
//     each result is committed to slot i of the output slice — the
//     output is a pure function of the inputs no matter which goroutine
//     computed which index, or in what order they finished.
//
//   - MapChunks(n, workers, fn) splits [0, n) into contiguous chunks
//     whose boundaries depend only on (n, workers) — never on timing —
//     and returns the per-chunk results in chunk order. Chunk-local
//     work observes items in the same relative order as a serial scan.
//
//   - Reduce(n, workers, shardFn, merge) folds the MapChunks partials
//     left-to-right in shard-index order, so floating-point
//     accumulation and top-k tie-breaking associate exactly the same
//     way on every run at a given worker count, and callers that need
//     bit-equality with a serial loop can use order-insensitive merges
//     (integer sums, total-order selections).
//
// Functions run on the calling goroutine when workers or n is 1, so the
// serial path and the parallel path are the same code. A panic in any
// fn is re-raised on the calling goroutine after all workers stop.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes
// workers <= 0: GOMAXPROCS at call time. Tests and benchmarks pass an
// explicit count instead, which keeps their behaviour identical on any
// machine.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers resolves a caller-supplied worker count against the work
// size: non-positive means DefaultWorkers, and there is no point running
// more workers than items.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// panicBox captures the first panic raised by any worker so it can be
// re-raised on the calling goroutine. Without this a worker panic would
// kill the process with a goroutine stack the caller never sees.
type panicBox struct {
	once sync.Once
	val  interface{}
}

func (p *panicBox) capture() {
	if r := recover(); r != nil {
		p.once.Do(func() { p.val = r })
	}
}

func (p *panicBox) rethrow() {
	if p.val != nil {
		panic(fmt.Sprintf("par: worker panic: %v", p.val))
	}
}

// mapGrainFactor is how many dispatch chunks Map creates per worker.
// Workers claim whole chunks (one atomic per chunk, amortized over the
// items inside) instead of single items, which is what keeps tiny-item
// maps from paying per-item goroutine coordination; several chunks per
// worker preserves dynamic load balancing when item costs are skewed.
const mapGrainFactor = 8

// Map runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the n results committed in input order: out[i] = fn(i). fn
// must be safe to call concurrently; it may be called from the calling
// goroutine. Work is handed out in contiguous index chunks (ChunkBounds
// over workers*8 chunks, claimed dynamically), which is invisible in the
// output because each result lands in its own slot. workers <= 0 means
// DefaultWorkers.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	chunks := workers * mapGrainFactor
	if chunks > n {
		chunks = n
	}
	var (
		wg   sync.WaitGroup
		box  panicBox
		next atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer box.capture()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo, hi := ChunkBounds(n, chunks, c)
				for i := lo; i < hi; i++ {
					out[i] = fn(i)
				}
			}
		}()
	}
	wg.Wait()
	box.rethrow()
	return out
}

// ForEach is Map without results: it runs fn(i) for every i in [0, n)
// on up to workers goroutines and returns when all calls complete.
func ForEach(n, workers int, fn func(i int)) {
	Map(n, workers, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}

// Chunks reports the number of chunks MapChunks and Reduce will use for
// n items at the given worker count — min(workers, n) after defaulting,
// a pure function of (n, workers).
func Chunks(n, workers int) int { return clampWorkers(workers, n) }

// ChunkBounds returns the half-open range [lo, hi) of chunk c out of
// `chunks` over n items. Boundaries are the standard balanced split
// (sizes differ by at most one) and depend only on (n, chunks, c).
func ChunkBounds(n, chunks, c int) (lo, hi int) {
	return c * n / chunks, (c + 1) * n / chunks
}

// MapChunks splits [0, n) into min(workers, n) contiguous chunks and
// runs fn(chunk, lo, hi) for each on its own worker, returning the
// per-chunk results in chunk index order. Chunk boundaries are a pure
// function of (n, workers), so a caller that scans items lo..hi in
// order observes exactly the serial visiting order within its shard.
func MapChunks[T any](n, workers int, fn func(chunk, lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	chunks := clampWorkers(workers, n)
	if chunks == 1 {
		return []T{fn(0, 0, n)}
	}
	out := make([]T, chunks)
	var (
		wg  sync.WaitGroup
		box panicBox
	)
	for c := 0; c < chunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer box.capture()
			lo, hi := ChunkBounds(n, chunks, c)
			out[c] = fn(c, lo, hi)
		}(c)
	}
	wg.Wait()
	box.rethrow()
	return out
}

// Reduce computes per-shard partials in parallel with MapChunks and
// folds them left-to-right in shard-index order:
//
//	acc = merge(merge(part[0], part[1]), part[2]) ...
//
// The merge order is fixed by shard index — never by completion order —
// so floating-point accumulation associates identically on every run
// for a given (n, workers), and merges that are order-insensitive
// (integer sums, total-order top-k selection) match the serial loop
// bit-for-bit at every worker count. n == 0 returns the zero value.
func Reduce[T any](n, workers int, shardFn func(shard, lo, hi int) T, merge func(acc, part T) T) T {
	var acc T
	parts := MapChunks(n, workers, shardFn)
	for i, p := range parts {
		if i == 0 {
			acc = p
			continue
		}
		acc = merge(acc, p)
	}
	return acc
}
