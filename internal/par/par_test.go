package par

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapCommitsInInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 33} {
		got := Map(100, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(0) = %v, want nil", got)
	}
	if got := Map(-3, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(-3) = %v, want nil", got)
	}
	// workers <= 0 falls back to DefaultWorkers and still completes.
	got := Map(5, 0, func(i int) int { return i + 1 })
	if want := []int{1, 2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Map workers=0 = %v, want %v", got, want)
	}
	if w := DefaultWorkers(); w < 1 {
		t.Fatalf("DefaultWorkers = %d, want >= 1", w)
	}
}

// TestMapDeterministicAcrossWorkerCounts is the package's core contract:
// the output is identical at every worker count.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	ref := Map(500, 1, func(i int) string { return fmt.Sprintf("r%03d", i*7%501) })
	for _, workers := range []int{2, 3, 4, 8, 16} {
		got := Map(500, workers, func(i int) string { return fmt.Sprintf("r%03d", i*7%501) })
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d output differs from serial", workers)
		}
	}
}

func TestMapChunksOrderAndCoverage(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{1, 1}, {1, 8}, {7, 3}, {100, 4}, {100, 7}, {5, 100},
	} {
		covered := make([]bool, tc.n)
		var mu sync.Mutex
		parts := MapChunks(tc.n, tc.workers, func(chunk, lo, hi int) [2]int {
			mu.Lock()
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Errorf("n=%d w=%d: index %d covered twice", tc.n, tc.workers, i)
				}
				covered[i] = true
			}
			mu.Unlock()
			return [2]int{lo, hi}
		})
		if len(parts) != Chunks(tc.n, tc.workers) {
			t.Fatalf("n=%d w=%d: %d parts, want %d", tc.n, tc.workers, len(parts), Chunks(tc.n, tc.workers))
		}
		for i := range covered {
			if !covered[i] {
				t.Fatalf("n=%d w=%d: index %d never visited", tc.n, tc.workers, i)
			}
		}
		// Parts arrive in chunk order: each part's lo equals the previous
		// part's hi.
		prev := 0
		for ci, p := range parts {
			if p[0] != prev {
				t.Fatalf("n=%d w=%d: chunk %d starts at %d, want %d", tc.n, tc.workers, ci, p[0], prev)
			}
			if p[1] < p[0] {
				t.Fatalf("n=%d w=%d: chunk %d inverted bounds %v", tc.n, tc.workers, ci, p)
			}
			prev = p[1]
		}
		if prev != tc.n {
			t.Fatalf("n=%d w=%d: chunks end at %d, want %d", tc.n, tc.workers, prev, tc.n)
		}
	}
}

// TestReduceMergeOrderFixedByShard verifies the fold happens in shard
// index order: a string concatenation (order-sensitive merge) must come
// out in chunk order at every worker count.
func TestReduceMergeOrderFixedByShard(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e", "f", "g"}
	for _, workers := range []int{1, 2, 3, 7, 16} {
		got := Reduce(len(items), workers,
			func(_, lo, hi int) string { return strings.Join(items[lo:hi], "") },
			func(acc, part string) string { return acc + part })
		if got != "abcdefg" {
			t.Fatalf("workers=%d: Reduce = %q, want %q", workers, got, "abcdefg")
		}
	}
}

// TestReduceIntegerSumMatchesSerial: integer sums are order-insensitive,
// so the parallel reduction equals the serial loop exactly — the
// property vecdb's DistComps accounting relies on.
func TestReduceIntegerSumMatchesSerial(t *testing.T) {
	want := uint64(0)
	for i := 0; i < 1000; i++ {
		want += uint64(i * i)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got := Reduce(1000, workers,
			func(_, lo, hi int) uint64 {
				var s uint64
				for i := lo; i < hi; i++ {
					s += uint64(i * i)
				}
				return s
			},
			func(acc, part uint64) uint64 { return acc + part })
		if got != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, got, want)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(0, 4,
		func(_, _, _ int) int { t.Error("shardFn called for n=0"); return 1 },
		func(acc, part int) int { return acc + part })
	if got != 0 {
		t.Fatalf("Reduce(0) = %d, want zero value", got)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	ForEach(100, 4, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 4950 {
		t.Fatalf("ForEach sum = %d, want 4950", got)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if !strings.Contains(fmt.Sprint(r), "boom") {
					t.Fatalf("workers=%d: panic %v does not mention cause", workers, r)
				}
			}()
			Map(50, workers, func(i int) int {
				if i == 17 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

// TestMapAllWorkersPanic: every call panics; Map must still return (no
// deadlock) and re-raise one of the panics.
func TestMapAllWorkersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	Map(64, 8, func(i int) int { panic(fmt.Sprintf("worker item %d", i)) })
}

func TestMapChunksPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	MapChunks(50, 4, func(chunk, lo, hi int) int {
		if chunk == 2 {
			panic("chunk boom")
		}
		return lo
	})
}

// TestMapRaceStress hammers Map from multiple goroutines at once — under
// `go test -race` this proves result commits never collide.
func TestMapRaceStress(t *testing.T) {
	t.Parallel()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				n := 64 + g
				out := Map(n, 4, func(i int) int { return i * (g + 1) })
				for i, v := range out {
					if v != i*(g+1) {
						t.Errorf("g=%d iter=%d: out[%d] = %d", g, iter, i, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestChunkBounds(t *testing.T) {
	// Balanced split: sizes differ by at most one, cover [0, n).
	for _, tc := range []struct{ n, chunks int }{{10, 3}, {7, 7}, {100, 8}} {
		minSize, maxSize := tc.n, 0
		for c := 0; c < tc.chunks; c++ {
			lo, hi := ChunkBounds(tc.n, tc.chunks, c)
			size := hi - lo
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
		}
		if maxSize-minSize > 1 {
			t.Fatalf("n=%d chunks=%d: sizes range %d..%d", tc.n, tc.chunks, minSize, maxSize)
		}
	}
}
