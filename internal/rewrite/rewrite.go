// Package rewrite implements LLM-assisted query rewriting with execution-
// based equivalence verification — the Figure 1 "Query Rewrite" box and a
// direct instantiation of two §2.2.1 principles:
//
//   - the *low accuracy* challenge: "effective data management requires
//     ... strict equivalence before and after query rewriting, which
//     generic LLMs often cannot provide";
//   - the *verification* principle: "to mitigate hallucination, LLM4Data
//     incorporates mechanisms for output verification".
//
// The proposer plays the LLM's role: it generates rewrite candidates,
// most sound (redundant-conjunct elimination, contradiction detection,
// no-op ORDER BY removal) and some deliberately unsound (an off-by-one
// bound relaxation — the plausible-looking hallucination class). The
// verifier executes the original and each candidate against a witness
// database and compares result multisets; only candidates that survive
// are applied. Verification by counterexample testing is exactly what
// practical LLM-rewrite systems do — it cannot *prove* equivalence, but a
// witness database with discriminating rows catches the realistic errors.
package rewrite

import (
	"errors"
	"fmt"

	"dataai/internal/relation"
	"dataai/internal/token"
)

// ErrNoWitness indicates verification without a witness catalog.
var ErrNoWitness = errors.New("rewrite: no witness catalog")

// Proposal is one rewrite candidate.
type Proposal struct {
	SQL  string
	Rule string
}

// Proposer generates rewrite candidates for a query.
type Proposer interface {
	Propose(q *relation.ParsedQuery) []Proposal
}

// SimulatedLLMProposer generates candidates with rule-shaped edits, and —
// like the LLM it stands in for — occasionally proposes a subtly wrong
// one (bound relaxation). UnsoundRate controls how often; wrongness is
// deterministic per query text.
type SimulatedLLMProposer struct {
	// UnsoundRate in [0,1]: probability an unsound candidate is included.
	UnsoundRate float64
	// Seed drives the deterministic unsoundness decision.
	Seed uint64
}

// Propose implements Proposer.
func (p SimulatedLLMProposer) Propose(q *relation.ParsedQuery) []Proposal {
	var out []Proposal
	if c, ok := dropRedundantConjuncts(q); ok {
		out = append(out, Proposal{SQL: c.Render(), Rule: "redundant-conjunct-elimination"})
	}
	if c, ok := dropNoopOrderBy(q); ok {
		out = append(out, Proposal{SQL: c.Render(), Rule: "noop-orderby-elimination"})
	}
	// Hallucinated rewrite: relax one inclusive bound to exclusive
	// ("x >= v" -> "x > v") — looks like a simplification, changes
	// results whenever a row sits exactly on the bound.
	u := float64(token.Hash64Seed(q.Render(), p.Seed)>>11) / float64(1<<53)
	if u < p.UnsoundRate {
		if c, ok := relaxBound(q); ok {
			out = append(out, Proposal{SQL: c.Render(), Rule: "bound-relaxation (unsound)"})
		}
	}
	return out
}

// dropRedundantConjuncts removes conjuncts implied by a strictly tighter
// conjunct on the same column and direction: x > 5 AND x > 3 -> x > 5.
func dropRedundantConjuncts(q *relation.ParsedQuery) (*relation.ParsedQuery, bool) {
	conds := q.Conds()
	keep := make([]relation.Cond, 0, len(conds))
	dropped := false
	for i, c := range conds {
		redundant := false
		for j, d := range conds {
			if i == j || !implies(d, c) {
				continue
			}
			// d is at least as tight as c. Drop c — unless the two are
			// mutually implying duplicates, in which case only the later
			// copy goes.
			if !implies(c, d) || j < i {
				redundant = true
				break
			}
		}
		if redundant {
			dropped = true
			continue
		}
		keep = append(keep, c)
	}
	if !dropped {
		return nil, false
	}
	out := q.Clone()
	out.SetConds(keep)
	return out, true
}

// implies reports whether cond a satisfies-implies cond b for numeric
// comparisons on the same column: every row passing a also passes b.
func implies(a, b relation.Cond) bool {
	if a.Col != b.Col {
		return false
	}
	af, aNum := toF(a.Val)
	bf, bNum := toF(b.Val)
	if !aNum || !bNum {
		// Equality on identical literals implies itself.
		return a.Op == "=" && b.Op == "=" && a.Val == b.Val
	}
	switch {
	case (a.Op == ">" || a.Op == ">=") && (b.Op == ">" || b.Op == ">="):
		if af > bf {
			return true
		}
		return af == bf && !(a.Op == ">=" && b.Op == ">")
	case (a.Op == "<" || a.Op == "<=") && (b.Op == "<" || b.Op == "<="):
		if af < bf {
			return true
		}
		return af == bf && !(a.Op == "<=" && b.Op == "<")
	case a.Op == "=" && b.Op == "=":
		return af == bf
	default:
		return false
	}
}

func toF(v relation.Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// dropNoopOrderBy removes ORDER BY from scalar-aggregate queries: a
// one-row result has no order.
func dropNoopOrderBy(q *relation.ParsedQuery) (*relation.ParsedQuery, bool) {
	col, _ := q.OrderBy()
	if col == "" || !q.HasAggregates() || q.HasGroupBy() {
		return nil, false
	}
	out := q.Clone()
	out.DropOrderBy()
	return out, true
}

// relaxBound turns the first inclusive comparison exclusive.
func relaxBound(q *relation.ParsedQuery) (*relation.ParsedQuery, bool) {
	conds := q.Conds()
	for i, c := range conds {
		if c.Op == ">=" || c.Op == "<=" {
			out := q.Clone()
			conds[i].Op = c.Op[:1]
			out.SetConds(conds)
			return out, true
		}
	}
	return nil, false
}

// Result reports one rewrite attempt.
type Result struct {
	// SQL is the accepted rewrite (the original when nothing verified).
	SQL string
	// Applied names the accepted rule ("" when none).
	Applied string
	// Rejected lists candidates the verifier refused, with reasons.
	Rejected []string
	// Verified counts candidates that passed verification.
	Verified int
}

// Rewriter verifies proposals against a witness catalog.
type Rewriter struct {
	Proposer Proposer
	// Witness is the database candidates are executed against. A good
	// witness contains rows on predicate boundaries so unsound rewrites
	// produce visible differences.
	Witness relation.Catalog
}

// Rewrite proposes, verifies, and returns the best accepted rewrite.
// "Best" is the shortest verified SQL (fewest predicates); the original
// is returned untouched when no candidate verifies.
func (r *Rewriter) Rewrite(sql string) (Result, error) {
	if len(r.Witness) == 0 {
		return Result{}, ErrNoWitness
	}
	orig, err := relation.ParseQuery(sql)
	if err != nil {
		return Result{}, fmt.Errorf("rewrite: parse: %w", err)
	}
	origOut, err := orig.Execute(r.Witness)
	if err != nil {
		return Result{}, fmt.Errorf("rewrite: execute original: %w", err)
	}
	origFP := relation.Fingerprint(origOut)

	res := Result{SQL: sql}
	best := len(sql)
	for _, cand := range r.Proposer.Propose(orig) {
		candQ, err := relation.ParseQuery(cand.SQL)
		if err != nil {
			res.Rejected = append(res.Rejected, fmt.Sprintf("%s: unparseable: %v", cand.Rule, err))
			continue
		}
		candOut, err := candQ.Execute(r.Witness)
		if err != nil {
			res.Rejected = append(res.Rejected, fmt.Sprintf("%s: execution failed: %v", cand.Rule, err))
			continue
		}
		if relation.Fingerprint(candOut) != origFP {
			res.Rejected = append(res.Rejected, fmt.Sprintf("%s: results differ on witness", cand.Rule))
			continue
		}
		res.Verified++
		if len(cand.SQL) < best {
			best = len(cand.SQL)
			res.SQL = cand.SQL
			res.Applied = cand.Rule
		}
	}
	return res, nil
}
