package rewrite

import (
	"errors"
	"strings"
	"testing"

	"dataai/internal/relation"
)

// witness builds a catalog whose rows sit on predicate boundaries, so
// unsound bound relaxations change results visibly.
func witness(t *testing.T) relation.Catalog {
	t.Helper()
	tbl, err := relation.NewTable("m", relation.Schema{
		{Name: "id", Type: relation.Int},
		{Name: "v", Type: relation.Float},
		{Name: "tag", Type: relation.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []relation.Row{
		{int64(1), 3.0, "a"},
		{int64(2), 5.0, "a"}, // exactly on the >= 5 boundary
		{int64(3), 7.0, "b"},
		{int64(4), 9.0, "b"},
	}
	for _, r := range rows {
		tbl.MustInsert(r)
	}
	return relation.Catalog{"m": tbl}
}

func TestRenderRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT * FROM m",
		"SELECT id, tag FROM m WHERE v >= 5 AND tag = 'b' ORDER BY id DESC LIMIT 2",
		"SELECT tag, count(*) AS n FROM m GROUP BY tag",
		"SELECT sum(v) AS total FROM m WHERE v > 3.5",
	}
	cat := witness(t)
	for _, q := range queries {
		p, err := relation.ParseQuery(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		rendered := p.Render()
		p2, err := relation.ParseQuery(rendered)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		a, err := p.Execute(cat)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p2.Execute(cat)
		if err != nil {
			t.Fatal(err)
		}
		if relation.Fingerprint(a) != relation.Fingerprint(b) {
			t.Errorf("render round trip changed semantics: %q -> %q", q, rendered)
		}
	}
}

func TestFingerprintOrderInsensitive(t *testing.T) {
	a, _ := relation.NewTable("t", relation.Schema{{Name: "x", Type: relation.Int}})
	a.MustInsert(relation.Row{int64(1)})
	a.MustInsert(relation.Row{int64(2)})
	b, _ := relation.NewTable("t", relation.Schema{{Name: "x", Type: relation.Int}})
	b.MustInsert(relation.Row{int64(2)})
	b.MustInsert(relation.Row{int64(1)})
	if relation.Fingerprint(a) != relation.Fingerprint(b) {
		t.Error("fingerprint sensitive to row order")
	}
	c, _ := relation.NewTable("t", relation.Schema{{Name: "x", Type: relation.Int}})
	c.MustInsert(relation.Row{int64(1)})
	c.MustInsert(relation.Row{int64(1)})
	if relation.Fingerprint(a) == relation.Fingerprint(c) {
		t.Error("fingerprint ignores multiplicity")
	}
}

func TestRedundantConjunctEliminated(t *testing.T) {
	r := &Rewriter{Proposer: SimulatedLLMProposer{}, Witness: witness(t)}
	res, err := r.Rewrite("SELECT id FROM m WHERE v > 5 AND v > 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != "redundant-conjunct-elimination" {
		t.Fatalf("applied = %q (rejected: %v)", res.Applied, res.Rejected)
	}
	if strings.Contains(res.SQL, "3") {
		t.Errorf("weaker conjunct survived: %s", res.SQL)
	}
	// The accepted rewrite must agree with the original everywhere on
	// the witness (already checked by the verifier; re-check endpoints).
	orig, _ := relation.ParseQuery("SELECT id FROM m WHERE v > 5 AND v > 3")
	re, _ := relation.ParseQuery(res.SQL)
	cat := witness(t)
	a, _ := orig.Execute(cat)
	b, _ := re.Execute(cat)
	if relation.Fingerprint(a) != relation.Fingerprint(b) {
		t.Error("accepted rewrite not equivalent")
	}
}

func TestDuplicateConjunctEliminated(t *testing.T) {
	r := &Rewriter{Proposer: SimulatedLLMProposer{}, Witness: witness(t)}
	res, err := r.Rewrite("SELECT id FROM m WHERE tag = 'a' AND tag = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != "redundant-conjunct-elimination" {
		t.Fatalf("applied = %q", res.Applied)
	}
	if strings.Count(res.SQL, "tag") != 1 {
		t.Errorf("duplicate survived: %s", res.SQL)
	}
}

func TestNoopOrderByEliminated(t *testing.T) {
	r := &Rewriter{Proposer: SimulatedLLMProposer{}, Witness: witness(t)}
	res, err := r.Rewrite("SELECT count(*) AS n FROM m ORDER BY n")
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != "noop-orderby-elimination" {
		t.Fatalf("applied = %q (rejected %v)", res.Applied, res.Rejected)
	}
	if strings.Contains(strings.ToUpper(res.SQL), "ORDER BY") {
		t.Errorf("order by survived: %s", res.SQL)
	}
}

func TestUnsoundProposalCaughtByVerifier(t *testing.T) {
	// Force the hallucinated bound relaxation; the witness has a row at
	// exactly v = 5, so ">= 5" and "> 5" differ and must be rejected.
	r := &Rewriter{
		Proposer: SimulatedLLMProposer{UnsoundRate: 1, Seed: 1},
		Witness:  witness(t),
	}
	res, err := r.Rewrite("SELECT id FROM m WHERE v >= 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != "" || res.SQL != "SELECT id FROM m WHERE v >= 5" {
		t.Fatalf("unsound rewrite accepted: %+v", res)
	}
	found := false
	for _, rej := range res.Rejected {
		if strings.Contains(rej, "bound-relaxation") && strings.Contains(rej, "differ") {
			found = true
		}
	}
	if !found {
		t.Errorf("verifier did not record the unsound rejection: %v", res.Rejected)
	}
}

func TestUnsoundProposalWouldSlipPastWeakWitness(t *testing.T) {
	// The flip side — a witness with no boundary row cannot distinguish
	// ">= 5" from "> 5", so the unsound rewrite verifies. This is the
	// documented limit of counterexample testing and why witness design
	// matters.
	tbl, _ := relation.NewTable("m", relation.Schema{
		{Name: "id", Type: relation.Int},
		{Name: "v", Type: relation.Float},
		{Name: "tag", Type: relation.String},
	})
	tbl.MustInsert(relation.Row{int64(1), 3.0, "a"})
	tbl.MustInsert(relation.Row{int64(2), 7.0, "b"})
	r := &Rewriter{
		Proposer: SimulatedLLMProposer{UnsoundRate: 1, Seed: 1},
		Witness:  relation.Catalog{"m": tbl},
	}
	res, err := r.Rewrite("SELECT id FROM m WHERE v >= 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified == 0 {
		t.Skip("proposer produced no unsound candidate at this seed")
	}
	if res.Applied == "" {
		t.Error("weak witness unexpectedly rejected everything")
	}
}

func TestRewriteNoCandidates(t *testing.T) {
	r := &Rewriter{Proposer: SimulatedLLMProposer{}, Witness: witness(t)}
	sql := "SELECT id FROM m WHERE tag = 'a'"
	res, err := r.Rewrite(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.SQL != sql || res.Applied != "" {
		t.Errorf("query without rewrites changed: %+v", res)
	}
}

func TestRewriteErrors(t *testing.T) {
	r := &Rewriter{Proposer: SimulatedLLMProposer{}}
	if _, err := r.Rewrite("SELECT 1"); !errors.Is(err, ErrNoWitness) {
		t.Errorf("err = %v", err)
	}
	r.Witness = witness(t)
	if _, err := r.Rewrite("not sql at all ###"); err == nil {
		t.Error("bad sql accepted")
	}
	if _, err := r.Rewrite("SELECT x FROM nowhere"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestImpliesTable(t *testing.T) {
	cases := []struct {
		a, b relation.Cond
		want bool
	}{
		{relation.Cond{Col: "v", Op: ">", Val: int64(5)}, relation.Cond{Col: "v", Op: ">", Val: int64(3)}, true},
		{relation.Cond{Col: "v", Op: ">", Val: int64(3)}, relation.Cond{Col: "v", Op: ">", Val: int64(5)}, false},
		{relation.Cond{Col: "v", Op: ">=", Val: int64(5)}, relation.Cond{Col: "v", Op: ">", Val: int64(5)}, false},
		{relation.Cond{Col: "v", Op: ">", Val: int64(5)}, relation.Cond{Col: "v", Op: ">=", Val: int64(5)}, true},
		{relation.Cond{Col: "v", Op: "<", Val: int64(3)}, relation.Cond{Col: "v", Op: "<=", Val: int64(5)}, true},
		{relation.Cond{Col: "v", Op: "<=", Val: int64(5)}, relation.Cond{Col: "v", Op: "<", Val: int64(5)}, false},
		{relation.Cond{Col: "a", Op: ">", Val: int64(5)}, relation.Cond{Col: "b", Op: ">", Val: int64(3)}, false},
		{relation.Cond{Col: "t", Op: "=", Val: "x"}, relation.Cond{Col: "t", Op: "=", Val: "x"}, true},
		{relation.Cond{Col: "t", Op: "=", Val: "x"}, relation.Cond{Col: "t", Op: "=", Val: "y"}, false},
	}
	for i, c := range cases {
		if got := implies(c.a, c.b); got != c.want {
			t.Errorf("case %d: implies(%+v, %+v) = %v", i, c.a, c.b, got)
		}
	}
}
