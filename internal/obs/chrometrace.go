package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteChrome renders the trace as a Chrome trace-event JSON file,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Layout:
//
//   - one thread track per span/instant track name (tids assigned in
//     sorted-name order, so GPU tracks stack gpu0, gpu1, ... top-down);
//   - gpu/llm spans as "X" complete events; request-lifecycle spans as
//     nestable async "b"/"e" pairs keyed by the request track, so the
//     queue/prefill/decode/reroute phases nest under the request root;
//   - instants ("crash", "preempt", "reroute") as "i" events;
//   - every registry metric as a "C" counter track.
//
// Output bytes are a pure function of the recorded trace: events are
// sorted by (logical time, seq), numbers render via strconv (shortest
// round-trip form), and field order is fixed. Two identical runs — or a
// serial and a parallel run of the same deterministic simulation — emit
// byte-identical files.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	spans := t.Spans()
	instants := t.Instants()

	// Assign tids by sorted track name so the layout is stable.
	trackSet := map[string]bool{}
	for _, s := range spans {
		trackSet[s.Track] = true
	}
	for _, in := range instants {
		trackSet[in.Track] = true
	}
	tracks := make([]string, 0, len(trackSet))
	for name := range trackSet {
		tracks = append(tracks, name)
	}
	sort.Strings(tracks)
	tid := map[string]int{}
	for i, name := range tracks {
		tid[name] = i + 1
	}

	type ev struct {
		ts   float64
		seq  uint64
		body string
	}
	var events []ev
	var maxSeq uint64

	common := func(track string, atMS float64) string {
		return `"ts":` + num(atMS*1000) + `,"pid":1,"tid":` + strconv.Itoa(tid[track])
	}
	for _, s := range spans {
		if s.StartSeq > maxSeq {
			maxSeq = s.StartSeq
		}
		if s.EndSeq > maxSeq {
			maxSeq = s.EndSeq
		}
		endMS, endSeq := s.EndMS, s.EndSeq
		if !s.Closed {
			// An unclosed span still exports (zero duration at its
			// start) so a malformed trace is visible, not silently
			// dropped; the invariant checker reports it as an error.
			endMS, endSeq = s.StartMS, s.StartSeq
		}
		reason := ""
		if s.Reason != "" {
			reason = `,"args":{"reason":` + str(s.Reason) + `}`
		}
		if s.Cat == CatRequest {
			head := `{"name":` + str(s.Name) + `,"cat":` + str(s.Cat) + `,"id":` + str(s.Track) + `,`
			events = append(events,
				ev{s.StartMS, s.StartSeq, head + `"ph":"b",` + common(s.Track, s.StartMS) + `}`},
				ev{endMS, endSeq, head + `"ph":"e",` + common(s.Track, endMS) + reason + `}`})
			continue
		}
		events = append(events, ev{s.StartMS, s.StartSeq,
			`{"name":` + str(s.Name) + `,"cat":` + str(s.Cat) + `,"ph":"X",` +
				common(s.Track, s.StartMS) + `,"dur":` + num((endMS-s.StartMS)*1000) + reason + `}`})
	}
	for _, in := range instants {
		if in.Seq > maxSeq {
			maxSeq = in.Seq
		}
		events = append(events, ev{in.AtMS, in.Seq,
			`{"name":` + str(in.Name) + `,"ph":"i","s":"t",` + common(in.Track, in.AtMS) + `}`})
	}

	// Counter points carry no tracer seq; assign synthetic seqs past the
	// tracer's maximum, in sorted-metric-name order, so the total order
	// stays deterministic.
	reg := t.Registry()
	seq := maxSeq
	for _, name := range reg.Names() {
		for _, p := range reg.Lookup(name).Points() {
			seq++
			events = append(events, ev{p.AtMS, seq,
				`{"name":` + str(name) + `,"ph":"C","ts":` + num(p.AtMS*1000) +
					`,"pid":1,"args":{"value":` + num(p.Value) + `}}`})
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		return events[i].seq < events[j].seq
	})

	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	b.WriteByte('\n')
	b.WriteString(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"dataai"}}`)
	for _, name := range tracks {
		b.WriteString(",\n")
		b.WriteString(`{"name":"thread_name","ph":"M","pid":1,"tid":` +
			strconv.Itoa(tid[name]) + `,"args":{"name":` + str(name) + `}}`)
	}
	for _, e := range events {
		b.WriteString(",\n")
		b.WriteString(e.body)
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// num renders a float in its shortest round-trip decimal form — stable
// across runs and platforms, unlike %g's exponent thresholds.
func num(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// str renders s as a JSON string literal.
func str(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Strings never fail to marshal; keep the checker honest.
		return `""`
	}
	return string(b)
}
