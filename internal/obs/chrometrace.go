package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"slices"
	"sort"
	"strconv"
)

// WriteChrome renders the trace as a Chrome trace-event JSON file,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Layout:
//
//   - one thread track per span/instant track name (tids assigned in
//     sorted-name order, so GPU tracks stack gpu0, gpu1, ... top-down);
//   - gpu/llm spans as "X" complete events; request-lifecycle spans as
//     nestable async "b"/"e" pairs keyed by the request track, so the
//     queue/prefill/decode/reroute phases nest under the request root;
//   - instants ("crash", "preempt", "reroute") as "i" events;
//   - every registry metric as a "C" counter track;
//   - span/instant attributes — and the terminal reason, as key
//     "reason" — as a key-sorted "args" object on the carrying event
//     (request-span attrs ride the "b" event, the reason the "e").
//
// Output bytes are a pure function of the recorded trace: events are
// sorted by (logical time, seq, begin-before-end), numbers render via
// strconv (shortest round-trip form), and field order is fixed. Two
// identical runs — or a serial and a parallel run of the same
// deterministic simulation — emit byte-identical files.
//
// The writer streams: events are sorted as small references into the
// recorded data and each body is rendered into a reused scratch buffer
// feeding a bufio.Writer, so export cost no longer scales allocations
// with event count (TestWriteChromeMatchesReference pins the bytes
// against the historical per-event-string implementation).
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	spans := t.Spans()
	instants := t.Instants()

	// Assign tids by sorted track name so the layout is stable.
	trackSet := map[string]bool{}
	for i := range spans {
		trackSet[spans[i].Track] = true
	}
	for i := range instants {
		trackSet[instants[i].Track] = true
	}
	tracks := make([]string, 0, len(trackSet))
	for name := range trackSet {
		tracks = append(tracks, name)
	}
	sort.Strings(tracks)
	tid := map[string]int{}
	for i, name := range tracks {
		tid[name] = i + 1
	}

	// Flatten counter points; they carry no tracer seq, so they get
	// synthetic seqs past the tracer's maximum, in sorted-metric-name
	// order, keeping the total order deterministic.
	var maxSeq uint64
	for i := range spans {
		if spans[i].StartSeq > maxSeq {
			maxSeq = spans[i].StartSeq
		}
		if spans[i].EndSeq > maxSeq {
			maxSeq = spans[i].EndSeq
		}
	}
	for i := range instants {
		if instants[i].Seq > maxSeq {
			maxSeq = instants[i].Seq
		}
	}
	type cpoint struct {
		name string
		p    Point
	}
	var cpoints []cpoint
	reg := t.Registry()
	for _, name := range reg.Names() {
		for _, p := range reg.Lookup(name).Points() {
			cpoints = append(cpoints, cpoint{name, p})
		}
	}

	// One reference per output event; kind breaks the only (ts, seq) tie
	// that exists — an unclosed span exporting its "b" and "e" at the
	// same instant — with begin first, as the historical stable sort did.
	const (
		kindBegin = iota // "X" span or request-span "b"
		kindEnd          // request-span "e"
		kindInstant
		kindCounter
	)
	type evRef struct {
		ts   float64
		seq  uint64
		kind uint8
		idx  int32
	}
	events := make([]evRef, 0, 2*len(spans)+len(instants)+len(cpoints))
	for i := range spans {
		s := &spans[i]
		events = append(events, evRef{s.StartMS, s.StartSeq, kindBegin, int32(i)})
		if s.Cat == CatRequest {
			endMS, endSeq := s.EndMS, s.EndSeq
			if !s.Closed {
				// An unclosed span still exports (zero duration at its
				// start) so a malformed trace is visible, not silently
				// dropped; the invariant checker reports it as an error.
				endMS, endSeq = s.StartMS, s.StartSeq
			}
			events = append(events, evRef{endMS, endSeq, kindEnd, int32(i)})
		}
	}
	for i := range instants {
		events = append(events, evRef{instants[i].AtMS, instants[i].Seq, kindInstant, int32(i)})
	}
	seq := maxSeq
	for i := range cpoints {
		seq++
		events = append(events, evRef{cpoints[i].p.AtMS, seq, kindCounter, int32(i)})
	}
	slices.SortFunc(events, func(a, b evRef) int {
		if a.ts != b.ts {
			if a.ts < b.ts {
				return -1
			}
			return 1
		}
		if a.seq != b.seq {
			if a.seq < b.seq {
				return -1
			}
			return 1
		}
		return int(a.kind) - int(b.kind)
	})

	bw := bufio.NewWriterSize(w, 64<<10)
	buf := make([]byte, 0, 512) // reused scratch for one event body
	common := func(dst []byte, track string, atMS float64) []byte {
		dst = append(dst, `"ts":`...)
		dst = appendNum(dst, atMS*1000)
		dst = append(dst, `,"pid":1,"tid":`...)
		return strconv.AppendInt(dst, int64(tid[track]), 10)
	}
	// args renders an event's attribute set (plus the optional terminal
	// reason, which participates as key "reason") as a key-sorted JSON
	// object. The scratch is reused across events, so attribute-free
	// traces render through the exact historical path and byte count.
	attrScratch := make([]Attr, 0, 8)
	args := func(dst []byte, attrs []Attr, reasonStr string) []byte {
		if len(attrs) == 0 && reasonStr == "" {
			return dst
		}
		attrScratch = append(attrScratch[:0], attrs...)
		if reasonStr != "" {
			attrScratch = append(attrScratch, S("reason", reasonStr))
		}
		// Insertion sort by key: attribute sets are tiny, and a stable
		// in-place sort keeps the writer allocation-free per event.
		for i := 1; i < len(attrScratch); i++ {
			for j := i; j > 0 && attrScratch[j].Key < attrScratch[j-1].Key; j-- {
				attrScratch[j], attrScratch[j-1] = attrScratch[j-1], attrScratch[j]
			}
		}
		dst = append(dst, `,"args":{`...)
		for i, a := range attrScratch {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendStr(dst, a.Key)
			dst = append(dst, ':')
			dst = a.appendValue(dst)
		}
		return append(dst, '}')
	}
	head := func(dst []byte, s *Span) []byte {
		dst = append(dst, `{"name":`...)
		dst = appendStr(dst, s.Name)
		dst = append(dst, `,"cat":`...)
		dst = appendStr(dst, s.Cat)
		return dst
	}

	// bufio.Writer latches its first error and every later write is a
	// no-op, so intermediate write errors are deliberately discarded and
	// the single Flush at the end reports whatever happened first.
	_, _ = bw.WriteString(`{"traceEvents":[`)
	_ = bw.WriteByte('\n')
	_, _ = bw.WriteString(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"dataai"}}`)
	for _, name := range tracks {
		buf = append(buf[:0], ",\n"...)
		buf = append(buf, `{"name":"thread_name","ph":"M","pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tid[name]), 10)
		buf = append(buf, `,"args":{"name":`...)
		buf = appendStr(buf, name)
		buf = append(buf, `}}`...)
		_, _ = bw.Write(buf)
	}
	for _, e := range events {
		buf = append(buf[:0], ",\n"...)
		switch e.kind {
		case kindBegin, kindEnd:
			s := &spans[e.idx]
			endMS := s.EndMS
			if !s.Closed {
				endMS = s.StartMS
			}
			if s.Cat == CatRequest {
				buf = head(buf, s)
				buf = append(buf, `,"id":`...)
				buf = appendStr(buf, s.Track)
				buf = append(buf, ',')
				if e.kind == kindBegin {
					buf = append(buf, `"ph":"b",`...)
					buf = common(buf, s.Track, s.StartMS)
					buf = args(buf, s.Attrs, "")
					buf = append(buf, '}')
				} else {
					buf = append(buf, `"ph":"e",`...)
					buf = common(buf, s.Track, endMS)
					buf = args(buf, nil, s.Reason)
					buf = append(buf, '}')
				}
				break
			}
			buf = head(buf, s)
			buf = append(buf, `,"ph":"X",`...)
			buf = common(buf, s.Track, s.StartMS)
			buf = append(buf, `,"dur":`...)
			buf = appendNum(buf, (endMS-s.StartMS)*1000)
			buf = args(buf, s.Attrs, s.Reason)
			buf = append(buf, '}')
		case kindInstant:
			in := &instants[e.idx]
			buf = append(buf, `{"name":`...)
			buf = appendStr(buf, in.Name)
			buf = append(buf, `,"ph":"i","s":"t",`...)
			buf = common(buf, in.Track, in.AtMS)
			buf = args(buf, in.Attrs, "")
			buf = append(buf, '}')
		case kindCounter:
			c := &cpoints[e.idx]
			buf = append(buf, `{"name":`...)
			buf = appendStr(buf, c.name)
			buf = append(buf, `,"ph":"C","ts":`...)
			buf = appendNum(buf, c.p.AtMS*1000)
			buf = append(buf, `,"pid":1,"args":{"value":`...)
			buf = appendNum(buf, c.p.Value)
			buf = append(buf, `}}`...)
		}
		_, _ = bw.Write(buf)
	}
	_, _ = bw.WriteString("\n]}\n")
	return bw.Flush()
}

// appendNum renders a float in its shortest round-trip decimal form —
// stable across runs and platforms, unlike %g's exponent thresholds.
func appendNum(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'f', -1, 64)
}

// appendInt renders an integer in decimal.
func appendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// num is appendNum as a string (kept for tests and small call sites).
func num(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// appendStr renders s as a JSON string literal, byte-identical to
// json.Marshal. The fast path covers the printable-ASCII strings every
// track and metric name in this repo uses; anything needing escapes
// (quotes, control bytes, HTML-escaped <>&, non-ASCII) takes the
// json.Marshal fallback, which handles escaping subtleties (U+2028,
// invalid UTF-8) exactly as the historical implementation did.
func appendStr(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			b, err := json.Marshal(s)
			if err != nil {
				// Strings never fail to marshal; keep the checker honest.
				return append(dst, `""`...)
			}
			return append(dst, b...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

// str renders s as a JSON string literal.
func str(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `""`
	}
	return string(b)
}
