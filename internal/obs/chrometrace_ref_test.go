package obs

import (
	"bytes"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// writeChromeReference is the historical WriteChrome implementation,
// verbatim (one string per event body, stable sort, strings.Builder).
// It is kept here as the oracle for the streaming rewrite: any trace the
// streaming writer emits must match this byte-for-byte.
func writeChromeReference(t *Tracer, w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	spans := t.Spans()
	instants := t.Instants()

	trackSet := map[string]bool{}
	for _, s := range spans {
		trackSet[s.Track] = true
	}
	for _, in := range instants {
		trackSet[in.Track] = true
	}
	tracks := make([]string, 0, len(trackSet))
	for name := range trackSet {
		tracks = append(tracks, name)
	}
	sort.Strings(tracks)
	tid := map[string]int{}
	for i, name := range tracks {
		tid[name] = i + 1
	}

	type ev struct {
		ts   float64
		seq  uint64
		body string
	}
	var events []ev
	var maxSeq uint64

	common := func(track string, atMS float64) string {
		return `"ts":` + num(atMS*1000) + `,"pid":1,"tid":` + strconv.Itoa(tid[track])
	}
	for _, s := range spans {
		if s.StartSeq > maxSeq {
			maxSeq = s.StartSeq
		}
		if s.EndSeq > maxSeq {
			maxSeq = s.EndSeq
		}
		endMS, endSeq := s.EndMS, s.EndSeq
		if !s.Closed {
			endMS, endSeq = s.StartMS, s.StartSeq
		}
		reason := ""
		if s.Reason != "" {
			reason = `,"args":{"reason":` + str(s.Reason) + `}`
		}
		if s.Cat == CatRequest {
			head := `{"name":` + str(s.Name) + `,"cat":` + str(s.Cat) + `,"id":` + str(s.Track) + `,`
			events = append(events,
				ev{s.StartMS, s.StartSeq, head + `"ph":"b",` + common(s.Track, s.StartMS) + `}`},
				ev{endMS, endSeq, head + `"ph":"e",` + common(s.Track, endMS) + reason + `}`})
			continue
		}
		events = append(events, ev{s.StartMS, s.StartSeq,
			`{"name":` + str(s.Name) + `,"cat":` + str(s.Cat) + `,"ph":"X",` +
				common(s.Track, s.StartMS) + `,"dur":` + num((endMS-s.StartMS)*1000) + reason + `}`})
	}
	for _, in := range instants {
		if in.Seq > maxSeq {
			maxSeq = in.Seq
		}
		events = append(events, ev{in.AtMS, in.Seq,
			`{"name":` + str(in.Name) + `,"ph":"i","s":"t",` + common(in.Track, in.AtMS) + `}`})
	}

	reg := t.Registry()
	seq := maxSeq
	for _, name := range reg.Names() {
		for _, p := range reg.Lookup(name).Points() {
			seq++
			events = append(events, ev{p.AtMS, seq,
				`{"name":` + str(name) + `,"ph":"C","ts":` + num(p.AtMS*1000) +
					`,"pid":1,"args":{"value":` + num(p.Value) + `}}`})
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		return events[i].seq < events[j].seq
	})

	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	b.WriteByte('\n')
	b.WriteString(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"dataai"}}`)
	for _, name := range tracks {
		b.WriteString(",\n")
		b.WriteString(`{"name":"thread_name","ph":"M","pid":1,"tid":` +
			strconv.Itoa(tid[name]) + `,"args":{"name":` + str(name) + `}}`)
	}
	for _, e := range events {
		b.WriteString(",\n")
		b.WriteString(e.body)
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// adversarialTracer builds a trace that stresses every formatting path:
// unclosed request spans (whose "b"/"e" share a (ts, seq) key and must
// keep b first), strings that need JSON escaping (quotes, backslashes,
// HTML-escaped <>&, control bytes, non-ASCII), awkward float values,
// zero-duration X spans, same-instant events, and counter/gauge points
// interleaved between tracer seqs.
func adversarialTracer() *Tracer {
	tr := NewTracer()

	r1 := tr.Begin(0, "req/r1", CatRequest, "request", 0)
	q1 := tr.Begin(0, "req/r1", CatRequest, "queue", r1)
	tr.End(2.5, q1)
	p1 := tr.Begin(2.5, "req/r1", CatRequest, "prefill", r1)
	tr.EndReason(7.25, p1, "chunked")
	tr.EndReason(7.25, r1, "finished")

	// Unclosed request span: exports b and e at the same (ts, seq).
	tr.Begin(3, "req/lost", CatRequest, "request", 0)

	// Names needing escapes, including the HTML trio json.Marshal escapes.
	weird := tr.Begin(1, `trk "q"<&>`, CatGPU, "a\\b\tc\u2028d£", 0)
	tr.EndReason(1, weird, "cause: <oom> & \"retry\"")

	g1 := tr.Begin(0.1, "gpu0", CatGPU, "prefill", 0)
	tr.End(0.30000000000000004, g1)
	tr.Instant(0.1, "gpu0", "crash")
	tr.Instant(0.1, "gpu0", "preempt")

	// Awkward floats: ts is ms*1000, so tiny values exercise long decimals.
	f := tr.Begin(1.0/3.0, "llm", CatLLM, "decode", 0)
	tr.End(math.Pi, f)

	reg := tr.Registry()
	kv := reg.Gauge("kv_blocks")
	kv.Set(0, 4)
	kv.Set(2.5, 17.75)
	kv.Set(2.5, 3)
	reg.Counter("tokens <out>").Add(1.5, 128)
	reg.Counter("tokens <out>").Add(7.25, 0.125)
	return tr
}

func TestWriteChromeMatchesReference(t *testing.T) {
	cases := map[string]*Tracer{
		"nil":         nil,
		"empty":       NewTracer(),
		"adversarial": adversarialTracer(),
	}
	for name, tr := range cases {
		var want, got bytes.Buffer
		if err := writeChromeReference(tr, &want); err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		if err := tr.WriteChrome(&got); err != nil {
			t.Fatalf("%s: WriteChrome: %v", name, err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			w, g := want.String(), got.String()
			i := 0
			for i < len(w) && i < len(g) && w[i] == g[i] {
				i++
			}
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			t.Errorf("%s: output diverges at byte %d:\nref: ...%q\nnew: ...%q",
				name, i, w[lo:min(i+80, len(w))], g[lo:min(i+80, len(g))])
		}
	}
}

func TestAppendStrMatchesJSONMarshal(t *testing.T) {
	inputs := []string{
		"", "plain", "req/r1", "with space", "~!#$%'()*+,-./:;=?@[]^_`{|}",
		`quote"q`, `back\slash`, "tab\there", "nl\nhere", "\x00\x1f",
		"html<&>", "utf£8", "\u2028sep", string([]byte{0xff, 0xfe}),
	}
	for _, s := range inputs {
		if got, want := string(appendStr(nil, s)), str(s); got != want {
			t.Errorf("appendStr(%q) = %s, want %s", s, got, want)
		}
	}
}
