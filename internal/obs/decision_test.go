package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestAttrEncoding(t *testing.T) {
	tr := NewTracer()
	root := tr.Begin(0, "req/r1", CatRequest, "request", 0)
	q := tr.Begin(0, "req/r1", CatRequest, "queue", root, I("inst", 2))
	tr.SpanAttrs(q, I("decision", 7))
	tr.End(3, q)
	tr.EndReason(3, root, "finish")
	x := tr.Begin(1, "gpu0", CatGPU, "iter", 0, F("load", 1.5), S("mode", "mixed"))
	tr.EndReason(2, x, "crash")
	tr.Instant(2.5, "router", "reroute", I("from", 0), I("to", 1))

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Key-sorted args: the queue span's "b" event merges the Begin attr
	// and the later SpanAttrs append, sorted (decision < inst).
	if !strings.Contains(out, `"args":{"decision":7,"inst":2}`) {
		t.Errorf("queue span args missing or unsorted:\n%s", out)
	}
	// An X span merges its attrs with the terminal reason, key-sorted
	// (load < mode < reason).
	if !strings.Contains(out, `"args":{"load":1.5,"mode":"mixed","reason":"crash"}`) {
		t.Errorf("X span args missing reason merge:\n%s", out)
	}
	if !strings.Contains(out, `"args":{"from":0,"to":1}`) {
		t.Errorf("instant args missing:\n%s", out)
	}
	var parsed struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("attr-carrying trace is not valid JSON: %v", err)
	}

	// Determinism: a second export emits identical bytes.
	var buf2 bytes.Buffer
	if err := tr.WriteChrome(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-export changed bytes")
	}
}

func TestAttrLookupAndNilSafety(t *testing.T) {
	tr := NewTracer()
	ref := tr.Begin(0, "gpu0", CatGPU, "iter", 0, I("inst", 3))
	tr.End(1, ref)
	s := tr.Spans()[0]
	if a, ok := s.Attr("inst"); !ok || a.Int != 3 {
		t.Errorf("Attr lookup = %+v, %v", a, ok)
	}
	if _, ok := s.Attr("missing"); ok {
		t.Error("found missing attr")
	}

	var nilT *Tracer
	nilT.SpanAttrs(1, I("x", 1))           // no-op
	nilT.Instant(0, "t", "n", I("x", 1))   // no-op
	nilT.AttachDecisions(NewDecisionLog()) // no-op
	if nilT.Decisions() != nil {
		t.Error("nil tracer has decisions")
	}
	tr.SpanAttrs(0, I("x", 1))   // zero ref: no-op
	tr.SpanAttrs(999, I("x", 1)) // out of range: no-op
	var nilL *DecisionLog
	if nilL.Record(Decision{}) != 0 || nilL.Len() != 0 || nilL.Decisions() != nil {
		t.Error("nil DecisionLog not inert")
	}
	if _, ok := nilL.At(1); ok {
		t.Error("nil DecisionLog At found something")
	}
}

func TestDecisionLogRecordAndRanked(t *testing.T) {
	dl := NewDecisionLog()
	d := Decision{AtMS: 10, ReqID: "r1", Kind: DecisionArrival, Chosen: 2,
		Candidates: []Candidate{
			{Instance: 0, Score: 5},
			{Instance: 1, Score: 5},
			{Instance: 2, Score: 1},
			{Instance: 3, Score: 9},
		}}
	if seq := dl.Record(d); seq != 1 {
		t.Fatalf("first Record seq = %d", seq)
	}
	if seq := dl.Record(d); seq != 2 {
		t.Fatalf("second Record seq = %d", seq)
	}
	if dl.Len() != 2 {
		t.Fatalf("Len = %d", dl.Len())
	}
	got, ok := dl.At(1)
	if !ok || got.Seq != 1 || got.ReqID != "r1" {
		t.Fatalf("At(1) = %+v, %v", got, ok)
	}
	if _, ok := dl.At(3); ok {
		t.Error("At(3) found a decision")
	}
	// Ranked: ascending score, ties to the lowest instance index.
	if want := []int{2, 0, 1, 3}; !reflect.DeepEqual(got.Ranked(), want) {
		t.Errorf("Ranked = %v, want %v", got.Ranked(), want)
	}
}

// decisionTrace builds a minimal routed-style trace: one finished
// request whose queue phase is annotated with its decision.
func decisionTrace() (*Tracer, *DecisionLog) {
	tr := NewTracer()
	dl := NewDecisionLog()
	root := tr.Begin(0, "req/r1", CatRequest, "request", 0)
	q := tr.Begin(0, "req/r1", CatRequest, "queue", root)
	dl.Record(Decision{AtMS: 0, ReqID: "r1", Kind: DecisionArrival, Chosen: 1,
		Candidates: []Candidate{{Instance: 0, Score: 3}, {Instance: 1, Score: 1}}})
	tr.SpanAttrs(q, I(DecisionSeqKey, 1), I(DecisionInstKey, 1))
	tr.End(2, q)
	tr.EndReason(2, root, "finish")
	tr.AttachDecisions(dl)
	return tr, dl
}

func TestCheckDecisionInvariants(t *testing.T) {
	tr, _ := decisionTrace()
	if err := tr.Check(); err != nil {
		t.Fatalf("well-formed decision trace failed: %v", err)
	}

	// Chosen instance disagrees with the span's inst attr.
	tr2, dl2 := decisionTrace()
	_ = tr2
	decs := dl2.Decisions()
	decs[0].Chosen = 0
	bad := NewDecisionLog()
	for _, d := range decs {
		bad.Record(d)
	}
	tr2.AttachDecisions(bad)
	if err := tr2.Check(); err == nil || !strings.Contains(err.Error(), "different delivery") {
		t.Errorf("chosen/span mismatch not caught: %v", err)
	}

	// Non-finite candidate score.
	tr3, dl3 := decisionTrace()
	decs = dl3.Decisions()
	decs[0].Candidates[0].Score = math.NaN()
	bad = NewDecisionLog()
	for _, d := range decs {
		bad.Record(d)
	}
	tr3.AttachDecisions(bad)
	if err := tr3.Check(); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("NaN score not caught: %v", err)
	}

	// A finished request with no arrival decision.
	tr4 := NewTracer()
	root := tr4.Begin(0, "req/r9", CatRequest, "request", 0)
	q := tr4.Begin(0, "req/r9", CatRequest, "queue", root)
	tr4.End(1, q)
	tr4.EndReason(1, root, "finish")
	tr4.AttachDecisions(NewDecisionLog())
	if err := tr4.Check(); err == nil || !strings.Contains(err.Error(), "arrival decisions") {
		t.Errorf("undecided finished request not caught: %v", err)
	}

	// A decision whose span never materialized.
	tr5 := NewTracer()
	dl5 := NewDecisionLog()
	dl5.Record(Decision{ReqID: "r1", Kind: DecisionArrival, Chosen: 0,
		Candidates: []Candidate{{Instance: 0, Score: 0}}})
	tr5.AttachDecisions(dl5)
	if err := tr5.Check(); err == nil || !strings.Contains(err.Error(), "no annotated span") {
		t.Errorf("spanless decision not caught: %v", err)
	}

	// Detached log: the same timeline passes without decision checks.
	tr4.AttachDecisions(nil)
	if err := tr4.Check(); err != nil {
		t.Errorf("detached log still checked decisions: %v", err)
	}
}
