package obs

import "dataai/internal/metrics"

// PhaseBreakdown folds the request-lifecycle spans into one
// metrics.Summary per phase name (queue, prefill, decode, reroute, ...):
// each request contributes a single sample per phase — the summed
// duration of that phase's spans on its track — so a request preempted
// twice contributes one queue sample covering all three waits. Requests
// that never entered a phase contribute no sample to it (the reroute
// summary describes re-routed requests only).
//
// Phase names are returned in first-seen recording order, and samples
// are added in first-seen request order, so downstream float
// accumulation (Mean, Stddev) is deterministic.
func PhaseBreakdown(t *Tracer) (names []string, byPhase map[string]*metrics.Summary) {
	byPhase = map[string]*metrics.Summary{}
	if t == nil {
		return nil, byPhase
	}
	type key struct{ track, name string }
	sums := map[key]float64{}
	var trackOrder []string
	seenTrack := map[string]bool{}
	for _, s := range t.Spans() {
		if s.Cat != CatRequest || s.Parent == 0 || !s.Closed {
			continue
		}
		if !seenTrack[s.Track] {
			seenTrack[s.Track] = true
			trackOrder = append(trackOrder, s.Track)
		}
		if _, ok := byPhase[s.Name]; !ok {
			byPhase[s.Name] = &metrics.Summary{}
			names = append(names, s.Name)
		}
		sums[key{s.Track, s.Name}] += s.EndMS - s.StartMS
	}
	for _, track := range trackOrder {
		for _, name := range names {
			if v, ok := sums[key{track, name}]; ok {
				byPhase[name].Add(v)
			}
		}
	}
	return names, byPhase
}
