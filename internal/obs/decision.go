package obs

import (
	"sort"
	"sync"
)

// Candidate is one instance's standing in a routing decision: the raw
// signals the policy scored (live queue load, cache affinity, breaker
// state, crash status) and the score it produced. The router picks the
// strict-less argmin over Score, so ties always break to the lowest
// Instance index.
type Candidate struct {
	// Instance is the candidate's index in the cluster.
	Instance int
	// QueueLoad is the instance's outstanding token load (the router's
	// live-load signal) at decision time.
	QueueLoad int
	// Affinity marks the instance the request's prefix or session
	// hashes to.
	Affinity bool
	// Breaker is the circuit-breaker state the policy consulted
	// (0 closed, 1 open, 2 half-open), or -1 when the policy did not
	// consult this instance's breaker (non-breaker-aware policies, and
	// the excluded instance, whose breaker read would perturb its lazy
	// state transitions).
	Breaker int
	// Down marks an instance inside a crash window at decision time.
	Down bool
	// Excluded marks the instance a re-routed sequence was just dropped
	// by; it is scored past every healthy candidate rather than
	// skipped, so it still appears in the record and ranks last.
	Excluded bool
	// Score is the policy's figure of merit (lower is better).
	Score float64
}

// Decision is one recorded routing decision: a cluster.route call with
// its full candidate score vector, stamped with the logical clock.
type Decision struct {
	// Seq is the 1-based decision sequence number, in engine order —
	// the coordinate a counterfactual replay forces by.
	Seq uint64
	// AtMS is the logical decision time.
	AtMS float64
	// ReqID names the routed request.
	ReqID string
	// Kind is "arrival" for fresh arrivals and "reroute" for
	// crash-dropped sequences re-routed after the detection delay.
	Kind string
	// Held marks an arrival the admission controller delayed before it
	// reached the router (AdmitQueue refill windows).
	Held bool
	// Chosen is the instance index the router picked.
	Chosen int
	// Candidates holds one entry per instance, in instance order.
	Candidates []Candidate
}

// Decision kinds.
const (
	DecisionArrival = "arrival"
	DecisionReroute = "reroute"
)

// Ranked returns the candidates' instance indices best-first: ascending
// Score, ties to the lowest instance index — the router's own argmin
// discipline. For a decision recorded from an unforced run,
// Ranked()[0] == Chosen, and Ranked()[k-1] is the rank-k alternative a
// counterfactual replay forces.
func (d Decision) Ranked() []int {
	order := make([]int, len(d.Candidates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := d.Candidates[order[a]].Score, d.Candidates[order[b]].Score
		if sa != sb {
			return sa < sb
		}
		return d.Candidates[order[a]].Instance < d.Candidates[order[b]].Instance
	})
	for i := range order {
		order[i] = d.Candidates[order[i]].Instance
	}
	return order
}

// DecisionLog is an append-only record of routing decisions. It is
// safe for concurrent use, nil-safe (every method on a nil log
// no-ops), and pure function of the run that filled it: replaying the
// same trace, fault plan, and seed fills an identical log.
type DecisionLog struct {
	mu   sync.Mutex
	decs []Decision
}

// NewDecisionLog returns an empty log.
func NewDecisionLog() *DecisionLog { return &DecisionLog{} }

// Record appends d, stamping it with the next 1-based sequence number,
// and returns that number (0 on a nil log).
func (l *DecisionLog) Record(d Decision) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	d.Seq = uint64(len(l.decs) + 1)
	l.decs = append(l.decs, d)
	seq := d.Seq
	l.mu.Unlock()
	return seq
}

// Len reports the number of recorded decisions.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.decs)
}

// Decisions returns a copy of every recorded decision in sequence
// order.
func (l *DecisionLog) Decisions() []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Decision(nil), l.decs...)
}

// At returns the decision with the given 1-based sequence number.
func (l *DecisionLog) At(seq uint64) (Decision, bool) {
	if l == nil {
		return Decision{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq == 0 || seq > uint64(len(l.decs)) {
		return Decision{}, false
	}
	return l.decs[seq-1], true
}
