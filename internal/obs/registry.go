package obs

import (
	"sort"
	"sync"
)

// MetricKind distinguishes counters from gauges.
type MetricKind int

// The two metric kinds: a Counter accumulates deltas monotonically; a
// Gauge is set to an instantaneous value.
const (
	CounterKind MetricKind = iota
	GaugeKind
)

// Point is one sample on a metric's timeline: the metric's value as of
// logical time AtMS.
type Point struct {
	AtMS  float64
	Value float64
}

// Metric is one named series of (logical time, value) points. Counters
// record their running total at each Add; gauges record the set value.
// The full series is retained so snapshots can be taken at any logical
// time after the fact and the exporter can emit counter tracks. A nil
// *Metric no-ops every method, so disabled instrumentation costs one nil
// check.
type Metric struct {
	name string
	kind MetricKind

	mu     sync.Mutex
	points []Point
	total  float64
}

// Name reports the metric's registry key.
func (m *Metric) Name() string {
	if m == nil {
		return ""
	}
	return m.name
}

// Kind reports whether the metric is a counter or a gauge.
func (m *Metric) Kind() MetricKind {
	if m == nil {
		return CounterKind
	}
	return m.kind
}

// record appends a point, clamping time to be non-decreasing: logical
// clocks never run backwards, and a monotone series is what makes
// ValueAt a binary search.
func (m *Metric) record(now, v float64) {
	if n := len(m.points); n > 0 && now < m.points[n-1].AtMS {
		now = m.points[n-1].AtMS
	}
	m.points = append(m.points, Point{AtMS: now, Value: v})
}

// Add accumulates delta into a counter at logical time now. On a gauge
// it adjusts the last set value (rarely wanted; prefer Set).
func (m *Metric) Add(now, delta float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.total += delta
	m.record(now, m.total)
	m.mu.Unlock()
}

// Set records the gauge's value at logical time now.
func (m *Metric) Set(now, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.total = v
	m.record(now, v)
	m.mu.Unlock()
}

// ValueAt reports the metric's value as of logical time t: the last
// point at or before t, or 0 before the first point.
func (m *Metric) ValueAt(t float64) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// First point strictly after t; the answer precedes it.
	idx := sort.Search(len(m.points), func(i int) bool { return m.points[i].AtMS > t })
	if idx == 0 {
		return 0
	}
	return m.points[idx-1].Value
}

// Final reports the metric's last recorded value (0 when empty).
func (m *Metric) Final() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.points) == 0 {
		return 0
	}
	return m.points[len(m.points)-1].Value
}

// Max reports the largest recorded value (0 when empty).
func (m *Metric) Max() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	max := 0.0
	for i, p := range m.points {
		if i == 0 || p.Value > max {
			max = p.Value
		}
	}
	return max
}

// Points returns a copy of the series.
func (m *Metric) Points() []Point {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Point(nil), m.points...)
}

// Registry holds named metrics. Lookup creates on first use, so
// instrumented code never registers up front. A nil *Registry returns
// nil metrics, which are themselves no-ops — the whole chain is safe to
// call with observability disabled.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*Metric)}
}

// metric returns the named metric, creating it with the given kind. A
// name keeps its original kind if it already exists.
func (r *Registry) metric(name string, kind MetricKind) *Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[name]
	if !ok {
		m = &Metric{name: name, kind: kind}
		r.metrics[name] = m
	}
	return m
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Metric { return r.metric(name, CounterKind) }

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Metric { return r.metric(name, GaugeKind) }

// Lookup returns the named metric or nil (which is safe to use).
func (r *Registry) Lookup(name string) *Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[name]
}

// Names returns every metric name in sorted order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot reports every metric's value as of logical time t, keyed by
// name — the live-signal read an autoscaling policy would poll.
func (r *Registry) Snapshot(t float64) map[string]float64 {
	if r == nil {
		return nil
	}
	names := r.Names()
	out := make(map[string]float64, len(names))
	for _, name := range names {
		out[name] = r.Lookup(name).ValueAt(t)
	}
	return out
}
