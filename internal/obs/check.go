package obs

import (
	"math"
	"sort"
	"strings"
)

// Registry metric-name suffixes the checker pairs up: a gauge named
// "<instance>/kv_used_blocks" is checked against the fixed gauge
// "<instance>/kv_capacity_blocks".
const (
	KVUsedSuffix     = "/kv_used_blocks"
	KVCapacitySuffix = "/kv_capacity_blocks"
)

// Span attribute keys the decision invariants pair with an attached
// DecisionLog: a span carrying DecisionSeqKey is the queue phase a
// routing decision delivered, and its DecisionInstKey value is the
// instance that decision chose.
const (
	DecisionSeqKey  = "decision"
	DecisionInstKey = "inst"
)

// Terminal reasons a request-root span may close with. "finish" is a
// completed request, "reject" an admission/drain rejection, "drop" a
// request abandoned by a fault. Anything else (including an empty
// reason) means the lifecycle chain was left dangling.
var terminalReasons = map[string]bool{"finish": true, "reject": true, "drop": true}

// Check verifies the trace's structural invariants and returns the first
// violation found (nil if the trace is well-formed, and trivially nil on
// a nil tracer). Invariants:
//
//   - every span is closed, with end >= start;
//   - parents exist, were opened before their children, and contain
//     their children's intervals;
//   - top-level spans on a GPU track never overlap (an instance executes
//     one iteration at a time);
//   - every request-root span (cat "request", no parent) terminates with
//     a terminal reason — a crashed request's chain must still end in
//     finish, reject, or drop, never dangle;
//   - lifecycle phases under one request root never overlap: a sequence
//     is resident in one place at a time, so a migrated or re-routed
//     session's spans on its source and destination instances must
//     abut, never coincide (double residency would mean the same GPU
//     state was live in two places);
//   - no "<x>/kv_used_blocks" gauge ever exceeds the final value of its
//     "<x>/kv_capacity_blocks" gauge;
//   - when a DecisionLog is attached (AttachDecisions), the decisions
//     and the timeline agree: every decision annotates exactly one
//     span (attrs "decision"/"inst"), on the deciding request's track,
//     whose "inst" attr matches the chosen instance; every candidate
//     score is finite; no request gets more than one arrival decision;
//     and every finished request root has exactly one — a routed
//     (non-rejected) request was decided exactly once.
//
// Tests call this on whole simulation runs, turning the timeline itself
// into an assertion rather than spot-checking a few aggregates.
func (t *Tracer) Check() error {
	if t == nil {
		return nil
	}
	spans := t.Spans()

	byID := make(map[uint64]Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	gpuTop := map[string][]Span{}
	reqKids := map[uint64][]Span{}
	for _, s := range spans {
		if !s.Closed {
			return errf("span %d (%s %q on %s) never ended", s.ID, s.Cat, s.Name, s.Track)
		}
		if s.EndMS < s.StartMS {
			return errf("span %d (%q on %s) ends at %.3f before start %.3f",
				s.ID, s.Name, s.Track, s.EndMS, s.StartMS)
		}
		if s.Parent != 0 {
			p, ok := byID[s.Parent]
			if !ok {
				return errf("span %d (%q on %s) references unknown parent %d",
					s.ID, s.Name, s.Track, s.Parent)
			}
			if s.Parent >= s.ID {
				return errf("span %d (%q on %s) opened before its parent %d",
					s.ID, s.Name, s.Track, s.Parent)
			}
			if s.StartMS < p.StartMS || s.EndMS > p.EndMS {
				return errf("span %d (%q on %s) [%.3f,%.3f] escapes parent %d (%q) [%.3f,%.3f]",
					s.ID, s.Name, s.Track, s.StartMS, s.EndMS, p.ID, p.Name, p.StartMS, p.EndMS)
			}
		}
		if s.Cat == CatGPU && s.Parent == 0 {
			gpuTop[s.Track] = append(gpuTop[s.Track], s)
		}
		if s.Cat == CatRequest && s.Parent != 0 {
			reqKids[s.Parent] = append(reqKids[s.Parent], s)
		}
		if s.Cat == CatRequest && s.Parent == 0 && !terminalReasons[s.Reason] {
			return errf("request span %d (%q on %s) ends with non-terminal reason %q",
				s.ID, s.Name, s.Track, s.Reason)
		}
	}

	gpuTracks := make([]string, 0, len(gpuTop))
	for track := range gpuTop {
		gpuTracks = append(gpuTracks, track)
	}
	sort.Strings(gpuTracks)
	for _, track := range gpuTracks {
		ss := gpuTop[track]
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].StartMS != ss[j].StartMS {
				return ss[i].StartMS < ss[j].StartMS
			}
			return ss[i].StartSeq < ss[j].StartSeq
		})
		for i := 1; i < len(ss); i++ {
			if ss[i].StartMS < ss[i-1].EndMS {
				return errf("track %s: span %d (%q) starting %.3f overlaps span %d (%q) ending %.3f",
					track, ss[i].ID, ss[i].Name, ss[i].StartMS,
					ss[i-1].ID, ss[i-1].Name, ss[i-1].EndMS)
			}
		}
	}

	roots := make([]uint64, 0, len(reqKids))
	for id := range reqKids {
		roots = append(roots, id)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, id := range roots {
		ss := reqKids[id]
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].StartMS != ss[j].StartMS {
				return ss[i].StartMS < ss[j].StartMS
			}
			return ss[i].StartSeq < ss[j].StartSeq
		})
		for i := 1; i < len(ss); i++ {
			if ss[i].StartMS < ss[i-1].EndMS {
				return errf("request root %d: phase %d (%q) starting %.3f overlaps phase %d (%q) ending %.3f — sequence resident in two places",
					id, ss[i].ID, ss[i].Name, ss[i].StartMS,
					ss[i-1].ID, ss[i-1].Name, ss[i-1].EndMS)
			}
		}
	}

	reg := t.Registry()
	for _, name := range reg.Names() {
		if !strings.HasSuffix(name, KVUsedSuffix) {
			continue
		}
		capName := strings.TrimSuffix(name, KVUsedSuffix) + KVCapacitySuffix
		capMetric := reg.Lookup(capName)
		if capMetric == nil {
			continue
		}
		if used, capacity := reg.Lookup(name).Max(), capMetric.Final(); used > capacity {
			return errf("gauge %s peaks at %.0f blocks, over capacity %.0f (%s)",
				name, used, capacity, capName)
		}
	}

	if dl := t.Decisions(); dl != nil {
		if err := checkDecisions(spans, dl); err != nil {
			return err
		}
	}
	return nil
}

// checkDecisions verifies an attached DecisionLog against the span
// timeline (the decision invariants listed on Check).
func checkDecisions(spans []Span, dl *DecisionLog) error {
	decs := dl.Decisions()

	// Spans annotated with a decision seq, one per decision.
	bySeq := make(map[uint64]Span, len(decs))
	for _, s := range spans {
		a, ok := s.Attr(DecisionSeqKey)
		if !ok {
			continue
		}
		seq := uint64(a.Int)
		if a.Int < 1 || seq > uint64(len(decs)) {
			return errf("span %d (%q on %s) references unknown decision %d (log has %d)",
				s.ID, s.Name, s.Track, a.Int, len(decs))
		}
		if dup, found := bySeq[seq]; found {
			return errf("decision %d annotates spans %d and %d — a decision delivers once",
				seq, dup.ID, s.ID)
		}
		bySeq[seq] = s
	}

	arrivals := map[string]int{}     // request → arrival decisions
	rootArrivals := map[uint64]int{} // request root span ID → arrival decisions
	for _, d := range decs {
		if len(d.Candidates) == 0 {
			return errf("decision %d (req %s) recorded no candidates", d.Seq, d.ReqID)
		}
		if d.Chosen < 0 || d.Chosen >= len(d.Candidates) {
			return errf("decision %d (req %s) chose instance %d of %d candidates",
				d.Seq, d.ReqID, d.Chosen, len(d.Candidates))
		}
		for _, c := range d.Candidates {
			if math.IsNaN(c.Score) || math.IsInf(c.Score, 0) {
				return errf("decision %d (req %s): candidate %d has non-finite score",
					d.Seq, d.ReqID, c.Instance)
			}
		}
		s, ok := bySeq[d.Seq]
		if !ok {
			return errf("decision %d (req %s) has no annotated span on the timeline", d.Seq, d.ReqID)
		}
		if !strings.HasSuffix(s.Track, "/"+d.ReqID) {
			return errf("decision %d routed req %s but annotates track %s", d.Seq, d.ReqID, s.Track)
		}
		if inst, ok := s.Attr(DecisionInstKey); !ok || int(inst.Int) != d.Chosen {
			return errf("decision %d (req %s) chose instance %d but span %d records a different delivery",
				d.Seq, d.ReqID, d.Chosen, s.ID)
		}
		if d.Kind == DecisionArrival {
			arrivals[d.ReqID]++
			if arrivals[d.ReqID] > 1 {
				return errf("req %s has %d arrival decisions — a request arrives once",
					d.ReqID, arrivals[d.ReqID])
			}
			rootArrivals[s.Parent]++
		}
	}

	// Every finished request root was routed exactly once: its phase
	// children carry exactly one arrival decision.
	for _, s := range spans {
		if s.Cat == CatRequest && s.Parent == 0 && s.Reason == "finish" && rootArrivals[s.ID] != 1 {
			return errf("finished request root %d (%s) has %d arrival decisions, want exactly 1",
				s.ID, s.Track, rootArrivals[s.ID])
		}
	}
	return nil
}
