// Package obs is the deterministic observability layer: spans, counters,
// and gauges keyed to the repo's logical clocks, with exporters that turn
// a serving run into a Perfetto-loadable timeline and a per-request
// time-breakdown table.
//
// Three properties distinguish it from a production tracing library:
//
//   - Timestamps are logical, never wall-clock. Serving spans carry
//     internal/sim engine time; LLM call-path spans carry accumulated
//     simulated LatencyMS. A trace is therefore a pure function of the
//     run's seeds: two runs (and a serial vs a parallel benchall) emit
//     byte-identical trace files. Events are totally ordered by
//     (time, seq), where seq is the recording order — the same ordering
//     discipline as the event engine itself.
//
//   - Everything is nil-safe and zero-overhead when disabled. Every
//     method on a nil *Tracer, *Registry, or *Metric is a no-op, so
//     instrumented code carries no conditional noise and an untraced run
//     (the default everywhere) does no extra work and allocates nothing.
//
//   - Traces are checkable. CheckInvariants verifies structural
//     well-formedness (spans closed, end >= start, parent containment,
//     no overlap within a GPU track, request chains terminated,
//     KV-occupancy gauges within capacity), so tests can assert a whole
//     run's timeline is internally consistent rather than spot-checking
//     a few numbers.
//
// The Tracer is safe for concurrent use (the LLM call path fans out
// across goroutines); recording order — and therefore seq — is
// scheduling-dependent under concurrency, so byte-identical traces are
// guaranteed only for single-threaded producers like the discrete-event
// serving cluster, or for concurrent producers whose spans carry
// caller-supplied logical times and are sorted at export.
package obs

import (
	"fmt"
	"sync"
)

// Span categories. The checker and the exporter branch on these: gpu
// spans render as thread-track slices and must not overlap within a
// track; request spans render as async (nestable) events keyed by their
// track; llm spans render as thread-track slices but may overlap
// (concurrent calls share the track).
const (
	CatGPU     = "gpu"
	CatRequest = "request"
	CatLLM     = "llm"
)

// SpanRef identifies a span recorded by a Tracer. The zero value means
// "no span" and is safe to End or annotate (a no-op), so callers thread
// refs through untraced paths without guards.
type SpanRef uint64

// Span is one recorded interval on a named track.
type Span struct {
	// ID is the 1-based span identifier; Parent is the enclosing span's
	// ID (0 = root).
	ID, Parent uint64
	// Track names the timeline the span belongs to ("gpu0", "req/r17",
	// "llm").
	Track string
	// Name is the span label ("prefill", "decode", "queue", "attempt 2").
	Name string
	// Cat is one of the Cat* constants.
	Cat string
	// StartMS and EndMS are logical-clock times.
	StartMS, EndMS float64
	// StartSeq and EndSeq are the recording-order tie-breaks.
	StartSeq, EndSeq uint64
	// Reason is the optional terminal annotation ("finish", "reject",
	// "crash") set by EndReason.
	Reason string
	// Attrs are typed annotations set at Begin or via SpanAttrs; the
	// exporter renders them key-sorted into the event's args.
	Attrs []Attr
	// Closed reports whether End was called.
	Closed bool
}

// Instant is one point event on a track ("crash", "preempt", "reroute").
type Instant struct {
	Track, Name string
	AtMS        float64
	Seq         uint64
	// Attrs are typed annotations recorded with the instant.
	Attrs []Attr
}

// Tracer records spans and instants and owns a metric Registry. The zero
// value is not usable; construct with NewTracer. A nil *Tracer is the
// disabled tracer: every method no-ops.
type Tracer struct {
	mu       sync.Mutex
	seq      uint64
	spans    []Span
	instants []Instant
	reg      *Registry
	dlog     *DecisionLog
}

// NewTracer returns an empty tracer with an empty registry.
func NewTracer() *Tracer {
	return &Tracer{reg: NewRegistry()}
}

// Registry returns the tracer's metric registry (nil for a nil tracer,
// which is itself a no-op registry).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Begin opens a span at logical time now. parent nests the span (0 for a
// root); attrs, if any, annotate the span. It returns 0 on a nil tracer.
func (t *Tracer) Begin(now float64, track, cat, name string, parent SpanRef, attrs ...Attr) SpanRef {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.seq++
	t.spans = append(t.spans, Span{
		ID:       uint64(len(t.spans) + 1),
		Parent:   uint64(parent),
		Track:    track,
		Name:     name,
		Cat:      cat,
		StartMS:  now,
		StartSeq: t.seq,
		Attrs:    append([]Attr(nil), attrs...),
	})
	ref := SpanRef(len(t.spans))
	t.mu.Unlock()
	return ref
}

// SpanAttrs appends typed attributes to a recorded span (open or
// closed). The exporter renders them key-sorted into the span's args,
// merged with any terminal reason. Annotating the zero ref or a nil
// tracer is a no-op, so callers thread refs through untraced paths
// without guards.
func (t *Tracer) SpanAttrs(ref SpanRef, attrs ...Attr) {
	if t == nil || ref == 0 || len(attrs) == 0 {
		return
	}
	t.mu.Lock()
	if int(ref) <= len(t.spans) {
		s := &t.spans[ref-1]
		s.Attrs = append(s.Attrs, attrs...)
	}
	t.mu.Unlock()
}

// End closes the span at logical time now. Ending the zero ref, on a nil
// tracer, or twice is a no-op; an end before the start clamps to the
// start (time never runs backwards).
func (t *Tracer) End(now float64, ref SpanRef) { t.EndReason(now, ref, "") }

// EndReason is End with a terminal annotation recorded on the span.
func (t *Tracer) EndReason(now float64, ref SpanRef, reason string) {
	if t == nil || ref == 0 {
		return
	}
	t.mu.Lock()
	s := &t.spans[ref-1]
	if !s.Closed {
		t.seq++
		if now < s.StartMS {
			now = s.StartMS
		}
		s.EndMS = now
		s.EndSeq = t.seq
		s.Reason = reason
		s.Closed = true
	}
	t.mu.Unlock()
}

// Instant records a point event on a track; attrs, if any, annotate it.
func (t *Tracer) Instant(now float64, track, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	t.instants = append(t.instants, Instant{
		Track: track, Name: name, AtMS: now, Seq: t.seq,
		Attrs: append([]Attr(nil), attrs...),
	})
	t.mu.Unlock()
}

// AttachDecisions links a routing DecisionLog to the tracer, so Check
// verifies the recorded decisions against the span timeline (see the
// decision invariants in Check). Attaching nil detaches. No-op on a
// nil tracer.
func (t *Tracer) AttachDecisions(dl *DecisionLog) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dlog = dl
	t.mu.Unlock()
}

// Decisions returns the attached DecisionLog (nil when none, and on a
// nil tracer).
func (t *Tracer) Decisions() *DecisionLog {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dlog
}

// Spans returns a copy of every recorded span in recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Instants returns a copy of every recorded instant in recording order.
func (t *Tracer) Instants() []Instant {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Instant(nil), t.instants...)
}

// span returns the indexed span by ref for internal readers; callers
// hold no reference into the live slice.
func (t *Tracer) span(ref SpanRef) (Span, bool) {
	if t == nil || ref == 0 {
		return Span{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(ref) > len(t.spans) {
		return Span{}, false
	}
	return t.spans[ref-1], true
}

// errf builds checker/exporter errors with a uniform prefix.
func errf(format string, args ...interface{}) error {
	return fmt.Errorf("obs: "+format, args...)
}
