package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildTrace records a small but complete two-request, two-GPU run:
// request r1 queues, prefills, decodes, and finishes on gpu0; request r2
// is rejected at admission. gpu0 runs two non-overlapping iterations.
func buildTrace() *Tracer {
	tr := NewTracer()
	reg := tr.Registry()

	root1 := tr.Begin(0, "req/r1", CatRequest, "request", 0)
	q1 := tr.Begin(0, "req/r1", CatRequest, "queue", root1)
	reg.Gauge("gpu0/queue_depth").Set(0, 1)

	it1 := tr.Begin(0, "gpu0", CatGPU, "prefill", 0)
	tr.End(4, it1)

	tr.End(4, q1)
	reg.Gauge("gpu0/queue_depth").Set(4, 0)
	p1 := tr.Begin(4, "req/r1", CatRequest, "prefill", root1)
	tr.End(8, p1)
	d1 := tr.Begin(8, "req/r1", CatRequest, "decode", root1)

	it2 := tr.Begin(8, "gpu0", CatGPU, "decode", 0)
	tr.End(12, it2)

	tr.End(12, d1)
	tr.EndReason(12, root1, "finish")

	root2 := tr.Begin(5, "req/r2", CatRequest, "request", 0)
	tr.EndReason(5, root2, "reject")
	tr.Instant(5, "gpu0", "reject")

	reg.Gauge("gpu0/kv_capacity_blocks").Set(0, 64)
	reg.Gauge("gpu0/kv_used_blocks").Set(4, 48)
	reg.Counter("llm/retries").Add(6, 2)
	return tr
}

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer()
	root := tr.Begin(10, "req/a", CatRequest, "request", 0)
	child := tr.Begin(10, "req/a", CatRequest, "queue", root)
	tr.End(15, child)
	tr.EndReason(20, root, "finish")

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[1].Parent != spans[0].ID {
		t.Errorf("child parent = %d, want %d", spans[1].Parent, spans[0].ID)
	}
	if spans[0].Reason != "finish" || !spans[0].Closed {
		t.Errorf("root = %+v, want closed with reason finish", spans[0])
	}
	if spans[0].StartSeq >= spans[1].StartSeq {
		t.Errorf("seq not increasing: root %d, child %d", spans[0].StartSeq, spans[1].StartSeq)
	}

	// Double-End is idempotent: the first reason and end time stick.
	tr.EndReason(99, root, "drop")
	if s, _ := tr.span(root); s.Reason != "finish" || s.EndMS != 20 {
		t.Errorf("after double End: %+v, want reason finish end 20", s)
	}

	// An end before the start clamps to the start.
	back := tr.Begin(50, "req/b", CatRequest, "request", 0)
	tr.EndReason(40, back, "finish")
	if s, _ := tr.span(back); s.EndMS != 50 {
		t.Errorf("backwards end = %v, want clamped to 50", s.EndMS)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ref := tr.Begin(0, "x", CatGPU, "y", 0)
	if ref != 0 {
		t.Fatalf("nil tracer Begin = %d, want 0", ref)
	}
	tr.End(1, ref)
	tr.EndReason(1, ref, "finish")
	tr.Instant(1, "x", "y")
	if tr.Spans() != nil || tr.Instants() != nil {
		t.Error("nil tracer returned non-nil events")
	}
	if err := tr.Check(); err != nil {
		t.Errorf("nil tracer Check = %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil tracer WriteChrome: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("nil tracer trace is not valid JSON: %q", buf.String())
	}

	reg := tr.Registry()
	if reg != nil {
		t.Fatal("nil tracer Registry != nil")
	}
	reg.Counter("c").Add(0, 1)
	reg.Gauge("g").Set(0, 1)
	if got := reg.Lookup("c").ValueAt(10); got != 0 {
		t.Errorf("nil metric ValueAt = %v", got)
	}
	if reg.Names() != nil || reg.Snapshot(0) != nil {
		t.Error("nil registry returned non-nil collections")
	}

	names, byPhase := PhaseBreakdown(tr)
	if names != nil || len(byPhase) != 0 {
		t.Error("nil tracer PhaseBreakdown returned data")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits")
	c.Add(1, 1)
	c.Add(3, 2)
	g := reg.Gauge("depth")
	g.Set(0, 5)
	g.Set(2, 3)
	g.Set(4, 9)

	if got := c.Final(); got != 3 {
		t.Errorf("counter Final = %v, want 3", got)
	}
	if got := c.ValueAt(2); got != 1 {
		t.Errorf("counter ValueAt(2) = %v, want 1", got)
	}
	if got := c.ValueAt(0.5); got != 0 {
		t.Errorf("counter ValueAt(0.5) = %v, want 0", got)
	}
	if got := g.Max(); got != 9 {
		t.Errorf("gauge Max = %v, want 9", got)
	}
	if got := g.ValueAt(3); got != 3 {
		t.Errorf("gauge ValueAt(3) = %v, want 3", got)
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "depth" || got[1] != "hits" {
		t.Errorf("Names = %v, want [depth hits]", got)
	}
	snap := reg.Snapshot(2)
	if snap["depth"] != 3 || snap["hits"] != 1 {
		t.Errorf("Snapshot(2) = %v, want depth 3 hits 1", snap)
	}
	// Same name keeps its original kind and identity.
	if reg.Gauge("hits") != c {
		t.Error("re-lookup under a different kind returned a new metric")
	}
	if c.Kind() != CounterKind {
		t.Errorf("kind changed to %v", c.Kind())
	}
	// Time clamps monotone even if a caller hands a stale clock.
	g.Set(1, 7)
	pts := g.Points()
	if last := pts[len(pts)-1]; last.AtMS != 4 || last.Value != 7 {
		t.Errorf("stale-clock point = %+v, want clamped to AtMS 4", last)
	}
}

func TestWriteChromeDeterministicAndValid(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTrace().WriteChrome(&a); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := buildTrace().WriteChrome(&b); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical traces exported different bytes")
	}

	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	for _, ph := range []string{"M", "X", "b", "e", "i", "C"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in export (histogram %v)", ph, phases)
		}
	}
	// Events must be time-ordered (metadata prefix aside).
	last := -1.0
	for _, e := range doc.TraceEvents {
		if e["ph"] == "M" {
			continue
		}
		ts := e["ts"].(float64)
		if ts < last {
			t.Fatalf("events out of order: ts %v after %v", ts, last)
		}
		last = ts
	}
	out := a.String()
	for _, want := range []string{`"thread_name"`, `"gpu0"`, `"req/r1"`, `"reason":"finish"`, `"gpu0/kv_used_blocks"`} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
}

func TestCheckPasses(t *testing.T) {
	if err := buildTrace().Check(); err != nil {
		t.Fatalf("well-formed trace failed Check: %v", err)
	}
}

func TestCheckViolations(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Tracer
		want  string
	}{
		{"unclosed span", func() *Tracer {
			tr := NewTracer()
			tr.Begin(0, "gpu0", CatGPU, "prefill", 0)
			return tr
		}, "never ended"},
		{"child escapes parent", func() *Tracer {
			tr := NewTracer()
			root := tr.Begin(0, "req/a", CatRequest, "request", 0)
			child := tr.Begin(5, "req/a", CatRequest, "decode", root)
			tr.EndReason(10, root, "finish")
			tr.End(20, child)
			return tr
		}, "escapes parent"},
		{"gpu overlap", func() *Tracer {
			tr := NewTracer()
			a := tr.Begin(0, "gpu0", CatGPU, "prefill", 0)
			b := tr.Begin(5, "gpu0", CatGPU, "decode", 0)
			tr.End(10, a)
			tr.End(15, b)
			return tr
		}, "overlaps"},
		{"dangling request", func() *Tracer {
			tr := NewTracer()
			root := tr.Begin(0, "req/a", CatRequest, "request", 0)
			tr.End(10, root) // no terminal reason
			return tr
		}, "non-terminal reason"},
		{"double residency", func() *Tracer {
			// A migrated session whose source-instance decode phase is
			// still open when the destination's starts: the same GPU
			// state live in two places.
			tr := NewTracer()
			root := tr.Begin(0, "req/a", CatRequest, "request", 0)
			d := tr.Begin(0, "req/a", CatRequest, "decode", root)
			m := tr.Begin(5, "req/a", CatRequest, "migrate", root)
			tr.End(8, d)
			tr.End(9, m)
			tr.EndReason(10, root, "finish")
			return tr
		}, "resident in two places"},
		{"kv over capacity", func() *Tracer {
			tr := NewTracer()
			tr.Registry().Gauge("gpu0/kv_capacity_blocks").Set(0, 10)
			tr.Registry().Gauge("gpu0/kv_used_blocks").Set(1, 12)
			return tr
		}, "over capacity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Check()
			if err == nil {
				t.Fatal("Check passed, want violation")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Check = %q, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestCheckAllowsAbuttingMigratedPhases(t *testing.T) {
	// A live migration hands the session off: decode ends on the donor
	// exactly when the migrate hop starts, which ends exactly when the
	// receiver's queue phase starts. Abutting is legal; only overlap is
	// double residency.
	tr := NewTracer()
	root := tr.Begin(0, "req/m", CatRequest, "request", 0)
	d := tr.Begin(0, "req/m", CatRequest, "decode", root)
	tr.End(5, d)
	m := tr.Begin(5, "req/m", CatRequest, "migrate", root)
	tr.End(9, m)
	q := tr.Begin(9, "req/m", CatRequest, "queue", root)
	tr.End(10, q)
	d2 := tr.Begin(10, "req/m", CatRequest, "decode", root)
	tr.End(14, d2)
	tr.EndReason(14, root, "finish")
	if err := tr.Check(); err != nil {
		t.Fatalf("abutting migrated phases failed Check: %v", err)
	}
}

func TestCheckAllowsOverlapOffGPUTracks(t *testing.T) {
	// Concurrent LLM calls share a track and may overlap.
	tr := NewTracer()
	a := tr.Begin(0, "llm", CatLLM, "call", 0)
	b := tr.Begin(2, "llm", CatLLM, "call", 0)
	tr.End(10, a)
	tr.End(12, b)
	if err := tr.Check(); err != nil {
		t.Fatalf("overlapping llm spans failed Check: %v", err)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	tr := NewTracer()
	// r1: queue 4ms then (after a preemption) 2ms more, decode 6ms.
	r1 := tr.Begin(0, "req/r1", CatRequest, "request", 0)
	q := tr.Begin(0, "req/r1", CatRequest, "queue", r1)
	tr.End(4, q)
	q2 := tr.Begin(10, "req/r1", CatRequest, "queue", r1)
	tr.End(12, q2)
	d := tr.Begin(12, "req/r1", CatRequest, "decode", r1)
	tr.End(18, d)
	tr.EndReason(18, r1, "finish")
	// r2: queue 1ms only.
	r2 := tr.Begin(0, "req/r2", CatRequest, "request", 0)
	q3 := tr.Begin(0, "req/r2", CatRequest, "queue", r2)
	tr.End(1, q3)
	tr.EndReason(1, r2, "drop")

	names, byPhase := PhaseBreakdown(tr)
	if len(names) != 2 || names[0] != "queue" || names[1] != "decode" {
		t.Fatalf("phase names = %v, want [queue decode]", names)
	}
	qs := byPhase["queue"]
	if qs.Count() != 2 || qs.Sum() != 7 {
		t.Errorf("queue summary count %d sum %v, want 2 samples summing 7", qs.Count(), qs.Sum())
	}
	ds := byPhase["decode"]
	if ds.Count() != 1 || ds.Sum() != 6 {
		t.Errorf("decode summary count %d sum %v, want 1 sample of 6", ds.Count(), ds.Sum())
	}
}
