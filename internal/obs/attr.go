package obs

// AttrKind discriminates an Attr's payload.
type AttrKind uint8

// Attribute payload kinds.
const (
	// AttrFloat renders via the shortest-round-trip float form the
	// exporter uses for every number.
	AttrFloat AttrKind = iota
	// AttrInt renders as a decimal integer.
	AttrInt
	// AttrStr renders as a JSON string literal.
	AttrStr
)

// Attr is one typed span or instant attribute. Attributes ride in the
// Chrome-trace event's "args" object, rendered key-sorted so trace
// bytes stay a pure function of the recorded data; the key "reason"
// is reserved for the terminal annotation set by EndReason. Construct
// with F, I, or S.
type Attr struct {
	Key  string
	Kind AttrKind
	// Num, Int, and Str carry the payload for the matching Kind; the
	// other two are ignored.
	Num float64
	Int int64
	Str string
}

// F builds a float-valued attribute.
func F(key string, v float64) Attr { return Attr{Key: key, Kind: AttrFloat, Num: v} }

// I builds an integer-valued attribute.
func I(key string, v int64) Attr { return Attr{Key: key, Kind: AttrInt, Int: v} }

// S builds a string-valued attribute.
func S(key, v string) Attr { return Attr{Key: key, Kind: AttrStr, Str: v} }

// appendValue renders the attribute's payload as a JSON value.
func (a Attr) appendValue(dst []byte) []byte {
	switch a.Kind {
	case AttrInt:
		return appendInt(dst, a.Int)
	case AttrStr:
		return appendStr(dst, a.Str)
	default:
		return appendNum(dst, a.Num)
	}
}

// attr returns the first attribute with the given key.
func findAttr(attrs []Attr, key string) (Attr, bool) {
	for _, a := range attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Attr returns the span's first attribute with the given key.
func (s Span) Attr(key string) (Attr, bool) { return findAttr(s.Attrs, key) }

// Attr returns the instant's first attribute with the given key.
func (in Instant) Attr(key string) (Attr, bool) { return findAttr(in.Attrs, key) }
