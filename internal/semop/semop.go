// Package semop implements semantic operators over relational tables with
// text columns — the LOTUS/PALIMPZEST/ZENDB line of systems the paper
// surveys under "Unstructured Document Analytics" (§2.2.2).
//
// A semantic operator is a relational operator whose predicate or
// projection is evaluated by an LLM: SemFilter keeps rows the model judges
// to satisfy a natural-language criterion, SemExtract adds a column whose
// values the model extracts from text, SemJoin matches rows across tables
// by a model-judged relation, and SemTopK ranks rows by judged relevance.
//
// Because every semantic evaluation costs an LLM call, plans over these
// operators are optimized the way the surveyed systems do (experiment E2):
//
//   - classical predicates run first (they are free),
//   - among semantic filters, cheaper and more selective ones run first
//     (predicate ordering by rank = cost / max(ε, 1 - selectivity)),
//   - duplicate text values are evaluated once (operator-level dedup),
//   - and the model itself can be a cache or cascade (package llm).
package semop

import (
	"errors"
	"fmt"
	"sort"

	"dataai/internal/llm"
	"dataai/internal/par"
	"dataai/internal/relation"
)

// ErrNotText indicates a semantic operator pointed at a non-string column.
var ErrNotText = errors.New("semop: text column must be a string column")

// Executor runs pipelines against one LLM client and accounts usage.
type Executor struct {
	Client llm.Client

	// Workers bounds the goroutines batch operators (SemFilter,
	// SemExtract) use to issue their deduplicated LLM calls; <= 1 keeps
	// the serial loop. Parallel issue requires Client to be safe for
	// concurrent use (every client in package llm is). Results and
	// accounting are committed in prompt order either way, so the
	// operator output and Calls/CostUSD/LatencyMS totals are identical
	// at any worker count.
	Workers int

	// Calls counts LLM invocations issued by this executor (after
	// operator-level dedup; cache hits inside the client still count
	// here as issued calls).
	Calls int
	// Degraded counts responses a resilience policy produced after the
	// primary model path failed (resilient.Client fallback or refusal);
	// zero whenever the client carries no such policy.
	Degraded int
	// CostUSD and LatencyMS accumulate the client-reported totals.
	CostUSD   float64
	LatencyMS float64
}

// NewExecutor returns an executor over client.
func NewExecutor(client llm.Client) *Executor {
	return &Executor{Client: client}
}

func (ex *Executor) complete(prompt string) (llm.Response, error) {
	resp, err := ex.Client.Complete(llm.Request{Prompt: prompt})
	if err != nil {
		return resp, err
	}
	ex.Calls++
	if resp.Degraded {
		ex.Degraded++
	}
	ex.CostUSD += resp.CostUSD
	ex.LatencyMS += resp.LatencyMS
	return resp, nil
}

// completeBatch issues one call per prompt and returns responses in
// prompt order. With Workers <= 1 it is exactly the serial complete
// loop. Above that, calls go to the Client from up to Workers
// goroutines, and accounting is then committed serially in prompt order
// — float accumulation associates the same way as the serial loop, so
// CostUSD/LatencyMS are bit-identical. On error the first failing
// prompt (by index) wins and accounting covers exactly the prompts
// before it, as if the serial loop had stopped there; later prompts may
// already have reached the Client, which only ever means extra cache
// warmth on an aborted operator.
func (ex *Executor) completeBatch(prompts []string) ([]llm.Response, error) {
	if ex.Workers <= 1 || len(prompts) < 2 {
		out := make([]llm.Response, len(prompts))
		for i, p := range prompts {
			resp, err := ex.complete(p)
			if err != nil {
				return nil, err
			}
			out[i] = resp
		}
		return out, nil
	}
	type outcome struct {
		resp llm.Response
		err  error
	}
	res := par.Map(len(prompts), ex.Workers, func(i int) outcome {
		resp, err := ex.Client.Complete(llm.Request{Prompt: prompts[i]})
		return outcome{resp, err}
	})
	out := make([]llm.Response, len(prompts))
	for i, r := range res {
		if r.err != nil {
			return nil, r.err
		}
		ex.Calls++
		if r.resp.Degraded {
			ex.Degraded++
		}
		ex.CostUSD += r.resp.CostUSD
		ex.LatencyMS += r.resp.LatencyMS
		out[i] = r.resp
	}
	return out, nil
}

// textColumn resolves col as a string column of t.
func textColumn(t *relation.Table, col string) (int, error) {
	idx, err := t.Schema.Index(col)
	if err != nil {
		return -1, err
	}
	if t.Schema[idx].Type != relation.String {
		return -1, fmt.Errorf("%w: %q is %s", ErrNotText, col, t.Schema[idx].Type)
	}
	return idx, nil
}

// Op is one pipeline step.
type Op interface {
	Apply(ex *Executor, t *relation.Table) (*relation.Table, error)
	// Semantic reports whether the op consumes LLM calls.
	Semantic() bool
	// Selectivity estimates the fraction of rows surviving the op,
	// used by the optimizer. Non-filtering ops return 1.
	Selectivity() float64
	// CostPerRow estimates the op's per-row cost in arbitrary units
	// (classical ops ~0, semantic ops ~ prompt size).
	CostPerRow() float64
}

// ClassicalFilter is a zero-cost predicate on one column.
type ClassicalFilter struct {
	Col string
	// Pred evaluates one cell.
	Pred func(relation.Value) bool
	// EstSelectivity is the optimizer's estimate (default 0.5 if zero).
	EstSelectivity float64
}

// Apply implements Op.
func (f ClassicalFilter) Apply(_ *Executor, t *relation.Table) (*relation.Table, error) {
	idx, err := t.Schema.Index(f.Col)
	if err != nil {
		return nil, err
	}
	return t.Select(func(r relation.Row) bool { return f.Pred(r[idx]) }), nil
}

// Semantic implements Op.
func (f ClassicalFilter) Semantic() bool { return false }

// Selectivity implements Op.
func (f ClassicalFilter) Selectivity() float64 {
	if f.EstSelectivity <= 0 || f.EstSelectivity > 1 {
		return 0.5
	}
	return f.EstSelectivity
}

// CostPerRow implements Op.
func (f ClassicalFilter) CostPerRow() float64 { return 0 }

// SemFilter keeps rows whose TextCol the model judges to satisfy
// Criterion (llm.JudgePrompt form, e.g. "contains:merger").
type SemFilter struct {
	TextCol   string
	Criterion string
	// EstSelectivity is the optimizer's estimate (default 0.5 if zero).
	EstSelectivity float64
}

// Apply implements Op. Identical text values are judged once.
func (f SemFilter) Apply(ex *Executor, t *relation.Table) (*relation.Table, error) {
	idx, err := textColumn(t, f.TextCol)
	if err != nil {
		return nil, err
	}
	// Unique texts in first-occurrence order — the order the serial
	// loop issued calls in — then one batched judge pass over them.
	texts := uniqueTexts(t, idx)
	prompts := make([]string, len(texts))
	for i, text := range texts {
		prompts[i] = llm.JudgePrompt(f.Criterion, text)
	}
	resps, err := ex.completeBatch(prompts)
	if err != nil {
		return nil, fmt.Errorf("semop: filter: %w", err)
	}
	verdict := make(map[string]bool, len(texts))
	for i, resp := range resps {
		verdict[texts[i]] = llm.IsYes(resp.Text)
	}
	return t.Select(func(r relation.Row) bool {
		text, _ := r[idx].(string)
		return verdict[text]
	}), nil
}

// Semantic implements Op.
func (f SemFilter) Semantic() bool { return true }

// Selectivity implements Op.
func (f SemFilter) Selectivity() float64 {
	if f.EstSelectivity <= 0 || f.EstSelectivity > 1 {
		return 0.5
	}
	return f.EstSelectivity
}

// CostPerRow implements Op.
func (f SemFilter) CostPerRow() float64 { return 1 }

// SemExtract adds column As (string) holding the model's extraction of
// Attribute from TextCol.
type SemExtract struct {
	TextCol   string
	Attribute string
	As        string
}

// Apply implements Op.
func (e SemExtract) Apply(ex *Executor, t *relation.Table) (*relation.Table, error) {
	idx, err := textColumn(t, e.TextCol)
	if err != nil {
		return nil, err
	}
	as := e.As
	if as == "" {
		as = e.Attribute
	}
	schema := append(relation.Schema{}, t.Schema...)
	schema = append(schema, relation.Column{Name: as, Type: relation.String})
	out, err := relation.NewTable(t.Name, schema)
	if err != nil {
		return nil, fmt.Errorf("semop: extract: %w", err)
	}
	texts := uniqueTexts(t, idx)
	prompts := make([]string, len(texts))
	for i, text := range texts {
		prompts[i] = llm.ExtractPrompt(e.Attribute, text)
	}
	resps, err := ex.completeBatch(prompts)
	if err != nil {
		return nil, fmt.Errorf("semop: extract: %w", err)
	}
	extracted := make(map[string]string, len(texts))
	for i, resp := range resps {
		extracted[texts[i]] = resp.Text
	}
	for _, r := range t.Rows {
		text, _ := r[idx].(string)
		nr := append(append(relation.Row{}, r...), extracted[text])
		if err := out.Insert(nr); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// uniqueTexts returns column idx's distinct string values in
// first-occurrence row order.
func uniqueTexts(t *relation.Table, idx int) []string {
	seen := make(map[string]bool, len(t.Rows))
	var texts []string
	for _, r := range t.Rows {
		text, _ := r[idx].(string)
		if seen[text] {
			continue
		}
		seen[text] = true
		texts = append(texts, text)
	}
	return texts
}

// Semantic implements Op.
func (e SemExtract) Semantic() bool { return true }

// Selectivity implements Op.
func (e SemExtract) Selectivity() float64 { return 1 }

// CostPerRow implements Op.
func (e SemExtract) CostPerRow() float64 { return 1 }

// Pipeline is an ordered list of ops over one input table.
type Pipeline struct {
	ops []Op
}

// NewPipeline builds a pipeline executing ops in order.
func NewPipeline(ops ...Op) *Pipeline { return &Pipeline{ops: ops} }

// Run executes the pipeline.
func (p *Pipeline) Run(ex *Executor, t *relation.Table) (*relation.Table, error) {
	cur := t
	for i, op := range p.ops {
		next, err := op.Apply(ex, cur)
		if err != nil {
			return nil, fmt.Errorf("semop: step %d: %w", i, err)
		}
		cur = next
	}
	return cur, nil
}

// Ops returns the pipeline's steps in execution order.
func (p *Pipeline) Ops() []Op { return p.ops }

// Optimize reorders filters to minimize expected LLM cost: classical
// filters first (free row reduction), then semantic filters ordered by
// rank = CostPerRow / max(ε, 1-Selectivity) — cheap, highly selective
// predicates run earliest so later expensive ones see fewer rows.
// Non-filter ops (Selectivity == 1 and not filters) keep their relative
// position after all filters that preceded them... simplification: ops
// that change schema (extract) act as barriers; filters may not cross
// them from the right, but filters to their left reorder freely.
func Optimize(ops []Op) []Op {
	out := make([]Op, 0, len(ops))
	var window []Op
	flush := func() {
		sort.SliceStable(window, func(i, j int) bool {
			return filterRank(window[i]) < filterRank(window[j])
		})
		out = append(out, window...)
		window = nil
	}
	for _, op := range ops {
		if isFilter(op) {
			window = append(window, op)
			continue
		}
		flush()
		out = append(out, op)
	}
	flush()
	return out
}

func isFilter(op Op) bool { return op.Selectivity() < 1 }

func filterRank(op Op) float64 {
	drop := 1 - op.Selectivity()
	if drop < 1e-9 {
		drop = 1e-9
	}
	return op.CostPerRow() / drop
}

// SemJoin returns pairs (l, r) where the model judges that l's LeftText
// satisfies Criterion(r's RightKey value): for each right row, the
// criterion is "contains:<right key>". Output schema is left columns then
// right columns (right names prefixed on collision, as relation.Join).
func SemJoin(ex *Executor, left, right *relation.Table, leftText, rightKey string) (*relation.Table, error) {
	li, err := textColumn(left, leftText)
	if err != nil {
		return nil, err
	}
	ri, err := textColumn(right, rightKey)
	if err != nil {
		return nil, err
	}
	schema := append(relation.Schema{}, left.Schema...)
	names := map[string]bool{}
	for _, c := range schema {
		names[c.Name] = true
	}
	for _, c := range right.Schema {
		name := c.Name
		if names[name] {
			name = right.Name + "." + name
		}
		names[name] = true
		schema = append(schema, relation.Column{Name: name, Type: c.Type})
	}
	out, err := relation.NewTable(left.Name+"_sem_"+right.Name, schema)
	if err != nil {
		return nil, err
	}
	type pairKey struct{ l, r string }
	verdicts := make(map[pairKey]bool)
	for _, lr := range left.Rows {
		ltext, _ := lr[li].(string)
		for _, rr := range right.Rows {
			rkey, _ := rr[ri].(string)
			pk := pairKey{ltext, rkey}
			match, ok := verdicts[pk]
			if !ok {
				resp, err := ex.complete(llm.JudgePrompt("contains:"+rkey, ltext))
				if err != nil {
					return nil, fmt.Errorf("semop: join: %w", err)
				}
				match = llm.IsYes(resp.Text)
				verdicts[pk] = match
			}
			if match {
				nr := append(append(relation.Row{}, lr...), rr...)
				if err := out.Insert(nr); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// SemTopK returns the k rows whose TextCol the model judges to satisfy
// criterion with the highest confidence. Rows judged "no" rank below all
// "yes" rows regardless of confidence.
func SemTopK(ex *Executor, t *relation.Table, textCol, criterion string, k int) (*relation.Table, error) {
	idx, err := textColumn(t, textCol)
	if err != nil {
		return nil, err
	}
	type scored struct {
		row   relation.Row
		yes   bool
		conf  float64
		order int
	}
	items := make([]scored, 0, len(t.Rows))
	for i, r := range t.Rows {
		text, _ := r[idx].(string)
		resp, err := ex.complete(llm.JudgePrompt(criterion, text))
		if err != nil {
			return nil, fmt.Errorf("semop: topk: %w", err)
		}
		items = append(items, scored{r, llm.IsYes(resp.Text), resp.Confidence, i})
	}
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].yes != items[j].yes {
			return items[i].yes
		}
		if items[i].conf != items[j].conf {
			return items[i].conf > items[j].conf
		}
		return items[i].order < items[j].order
	})
	out := &relation.Table{Name: t.Name, Schema: t.Schema}
	for i := 0; i < k && i < len(items); i++ {
		out.Rows = append(out.Rows, items[i].row)
	}
	return out, nil
}

// SemAggCount counts rows whose TextCol satisfies criterion — the
// "aggregation query" class of §2.2.2, which must consult every row
// rather than point-looking-up a few.
func SemAggCount(ex *Executor, t *relation.Table, textCol, criterion string) (int, error) {
	filtered, err := SemFilter{TextCol: textCol, Criterion: criterion}.Apply(ex, t)
	if err != nil {
		return 0, err
	}
	return filtered.Len(), nil
}
