package semop

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dataai/internal/llm"
	"dataai/internal/relation"
	"dataai/internal/resilient"
)

// TestSemFilterParallelMatchesSerial: filter output and executor
// accounting are identical at every worker count — completeBatch
// commits results and totals in prompt order regardless of which
// goroutine ran which call.
func TestSemFilterParallelMatchesSerial(t *testing.T) {
	tbl := docsTable(t, 60)
	serial := NewExecutor(perfectClient(1))
	want, err := SemFilter{TextCol: "body", Criterion: "contains:merger"}.Apply(serial, tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		ex := NewExecutor(perfectClient(1))
		ex.Workers = workers
		got, err := SemFilter{TextCol: "body", Criterion: "contains:merger"}.Apply(ex, tbl)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("workers=%d: filtered rows differ from serial", workers)
		}
		if ex.Calls != serial.Calls || ex.CostUSD != serial.CostUSD || ex.LatencyMS != serial.LatencyMS {
			t.Errorf("workers=%d: accounting (%d, %v, %v) != serial (%d, %v, %v)",
				workers, ex.Calls, ex.CostUSD, ex.LatencyMS,
				serial.Calls, serial.CostUSD, serial.LatencyMS)
		}
	}
}

// TestSemExtractParallelMatchesSerial: extraction adds the same column
// values in the same row order at every worker count.
func TestSemExtractParallelMatchesSerial(t *testing.T) {
	tbl := docsTable(t, 40)
	serial := NewExecutor(perfectClient(2))
	op := SemExtract{TextCol: "body", Attribute: "report", As: "rep"}
	want, err := op.Apply(serial, tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		ex := NewExecutor(perfectClient(2))
		ex.Workers = workers
		got, err := op.Apply(ex, tbl)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("workers=%d: extracted rows differ from serial", workers)
		}
		if ex.Calls != serial.Calls || ex.CostUSD != serial.CostUSD {
			t.Errorf("workers=%d: accounting differs from serial", workers)
		}
	}
}

// flakyClient fails any prompt whose text mentions the trigger string.
type flakyClient struct {
	inner   llm.Client
	trigger string
}

func (c *flakyClient) Complete(req llm.Request) (llm.Response, error) {
	if strings.Contains(req.Prompt, c.trigger) {
		return llm.Response{}, fmt.Errorf("flaky: refused %q", c.trigger)
	}
	return c.inner.Complete(req)
}

// TestSemFilterParallelErrorAccounting: on error the parallel batch
// reports the first failing prompt by index and accounts exactly the
// prompts before it — the same totals the serial loop leaves behind.
func TestSemFilterParallelErrorAccounting(t *testing.T) {
	tbl := docsTable(t, 20)
	mk := func(workers int) *Executor {
		ex := NewExecutor(&flakyClient{inner: perfectClient(3), trigger: "report 7 "})
		ex.Workers = workers
		return ex
	}
	serial := mk(1)
	_, serialErr := SemFilter{TextCol: "body", Criterion: "contains:merger"}.Apply(serial, tbl)
	if serialErr == nil {
		t.Fatal("serial run did not hit the planted error")
	}
	for _, workers := range []int{2, 8} {
		ex := mk(workers)
		_, err := SemFilter{TextCol: "body", Criterion: "contains:merger"}.Apply(ex, tbl)
		if err == nil || err.Error() != serialErr.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, serialErr)
		}
		if ex.Calls != serial.Calls || ex.CostUSD != serial.CostUSD {
			t.Errorf("workers=%d: error-path accounting (%d, %v) != serial (%d, %v)",
				workers, ex.Calls, ex.CostUSD, serial.Calls, serial.CostUSD)
		}
	}
}

func TestCompleteBatchEmpty(t *testing.T) {
	ex := NewExecutor(perfectClient(4))
	ex.Workers = 4
	out, err := ex.completeBatch(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("completeBatch(nil) = %v, %v", out, err)
	}
	if ex.Calls != 0 {
		t.Errorf("calls = %d, want 0", ex.Calls)
	}
}

// errClient always fails, so a parallel batch's every worker errors —
// the first prompt's error must still win deterministically.
type errClient struct{}

func (errClient) Complete(llm.Request) (llm.Response, error) {
	return llm.Response{}, errors.New("always down")
}

func TestCompleteBatchAllErrors(t *testing.T) {
	ex := NewExecutor(errClient{})
	ex.Workers = 4
	prompts := []string{"a", "b", "c", "d", "e", "f"}
	if _, err := ex.completeBatch(prompts); err == nil {
		t.Fatal("expected error")
	}
	if ex.Calls != 0 {
		t.Errorf("calls = %d, want 0 (no prompt precedes the first failure)", ex.Calls)
	}
}

// TestSemFilterParallelErrorAtLastPrompt: when the planted failure is
// the batch's last unique prompt, both the serial loop and the parallel
// path issue every prompt before reporting it, so not just the
// executor's accounting but the *inner client's* Usage() tally must be
// exactly equal at every worker count.
func TestSemFilterParallelErrorAtLastPrompt(t *testing.T) {
	tbl := docsTable(t, 20)
	mk := func(workers int) (*Executor, *llm.Simulator) {
		sim := perfectClient(3)
		ex := NewExecutor(&flakyClient{inner: sim, trigger: "report 19 "})
		ex.Workers = workers
		return ex, sim
	}
	serialEx, serialSim := mk(1)
	_, serialErr := SemFilter{TextCol: "body", Criterion: "contains:merger"}.Apply(serialEx, tbl)
	if serialErr == nil {
		t.Fatal("serial run did not hit the planted error")
	}
	serialUsage := serialSim.Usage()
	if serialUsage.Calls != 19 {
		t.Fatalf("serial inner calls = %d, want 19 (every prompt before the last)", serialUsage.Calls)
	}
	for _, workers := range []int{2, 8} {
		ex, sim := mk(workers)
		_, err := SemFilter{TextCol: "body", Criterion: "contains:merger"}.Apply(ex, tbl)
		if err == nil || err.Error() != serialErr.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, serialErr)
		}
		if ex.Calls != serialEx.Calls || ex.CostUSD != serialEx.CostUSD || ex.LatencyMS != serialEx.LatencyMS {
			t.Errorf("workers=%d: executor accounting differs from serial", workers)
		}
		if got := sim.Usage(); got != serialUsage {
			t.Errorf("workers=%d: inner Usage %+v != serial %+v", workers, got, serialUsage)
		}
	}
}

// TestSemFilterParallelDegradedParity: a resilient client in refusal
// mode never errors, so there is no abort path at all — rows, executor
// accounting, the Degraded tally, and the inner client's Usage() must
// be bit-identical between serial and every worker count.
func TestSemFilterParallelDegradedParity(t *testing.T) {
	tbl := docsTable(t, 30)
	mk := func(workers int) (*Executor, *llm.Simulator) {
		sim := perfectClient(5)
		flaky := &flakyClient{inner: sim, trigger: "report 7 "}
		ex := NewExecutor(resilient.Wrap(flaky, resilient.Policy{DegradeToRefusal: true}))
		ex.Workers = workers
		return ex, sim
	}
	serialEx, serialSim := mk(1)
	want, err := SemFilter{TextCol: "body", Criterion: "contains:merger"}.Apply(serialEx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if serialEx.Degraded != 1 {
		t.Fatalf("serial Degraded = %d, want 1 (the refused prompt)", serialEx.Degraded)
	}
	serialUsage := serialSim.Usage()
	for _, workers := range []int{2, 4, 8} {
		ex, sim := mk(workers)
		got, err := SemFilter{TextCol: "body", Criterion: "contains:merger"}.Apply(ex, tbl)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("workers=%d: rows differ from serial", workers)
		}
		if ex.Calls != serialEx.Calls || ex.CostUSD != serialEx.CostUSD ||
			ex.LatencyMS != serialEx.LatencyMS || ex.Degraded != serialEx.Degraded {
			t.Errorf("workers=%d: accounting (%d, %v, %v, degraded %d) != serial (%d, %v, %v, degraded %d)",
				workers, ex.Calls, ex.CostUSD, ex.LatencyMS, ex.Degraded,
				serialEx.Calls, serialEx.CostUSD, serialEx.LatencyMS, serialEx.Degraded)
		}
		if got := sim.Usage(); got != serialUsage {
			t.Errorf("workers=%d: inner Usage %+v != serial %+v", workers, got, serialUsage)
		}
	}
}

// BenchmarkParSemFilter: serial vs parallel LLM-call fan-out at 1/2/4/8
// workers (`go test -bench=Par -benchtime=1x ./...`).
func BenchmarkParSemFilter(b *testing.B) {
	tbl, err := relation.NewTable("docs", relation.Schema{
		{Name: "id", Type: relation.Int},
		{Name: "body", Type: relation.String},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		body := fmt.Sprintf("filing %d reviews routine operations", i)
		if i%4 == 0 {
			body = fmt.Sprintf("filing %d describes a merger agreement", i)
		}
		tbl.MustInsert(relation.Row{int64(i), body})
	}
	op := SemFilter{TextCol: "body", Criterion: "contains:merger"}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ex := NewExecutor(perfectClient(uint64(i)))
				ex.Workers = workers
				out, err := op.Apply(ex, tbl)
				if err != nil {
					b.Fatal(err)
				}
				if out.Len() != 128 {
					b.Fatalf("filtered = %d, want 128", out.Len())
				}
			}
		})
	}
}
