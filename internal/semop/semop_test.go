package semop

import (
	"errors"
	"fmt"
	"testing"

	"dataai/internal/llm"
	"dataai/internal/relation"
)

func perfectClient(seed uint64) *llm.Simulator {
	m := llm.LargeModel()
	m.ErrRate = 0
	m.HallucinationRate = 0
	m.ContextWindow = 1 << 20
	return llm.NewSimulator(m, seed)
}

// docsTable builds a table of n documents; rows where i%3==0 mention
// "merger", rows where i%2==0 have year 2024 (the rest 2023).
func docsTable(t *testing.T, n int) *relation.Table {
	t.Helper()
	tbl, err := relation.NewTable("docs", relation.Schema{
		{Name: "id", Type: relation.Int},
		{Name: "year", Type: relation.Int},
		{Name: "body", Type: relation.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		body := fmt.Sprintf("report %d discusses quarterly earnings", i)
		if i%3 == 0 {
			body = fmt.Sprintf("report %d announces a merger with a rival", i)
		}
		year := int64(2023)
		if i%2 == 0 {
			year = 2024
		}
		tbl.MustInsert(relation.Row{int64(i), year, body})
	}
	return tbl
}

func TestSemFilter(t *testing.T) {
	ex := NewExecutor(perfectClient(1))
	tbl := docsTable(t, 30)
	out, err := SemFilter{TextCol: "body", Criterion: "contains:merger"}.Apply(ex, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Errorf("filtered rows = %d, want 10", out.Len())
	}
	if ex.Calls != 30 {
		t.Errorf("calls = %d, want 30", ex.Calls)
	}
	if ex.CostUSD <= 0 {
		t.Error("cost not accounted")
	}
}

func TestSemFilterDedupsIdenticalTexts(t *testing.T) {
	ex := NewExecutor(perfectClient(2))
	tbl, _ := relation.NewTable("t", relation.Schema{{Name: "body", Type: relation.String}})
	for i := 0; i < 20; i++ {
		tbl.MustInsert(relation.Row{"identical merger text"})
	}
	out, err := SemFilter{TextCol: "body", Criterion: "contains:merger"}.Apply(ex, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 20 {
		t.Errorf("rows = %d", out.Len())
	}
	if ex.Calls != 1 {
		t.Errorf("calls = %d, want 1 (dedup)", ex.Calls)
	}
}

func TestSemFilterWrongColumn(t *testing.T) {
	ex := NewExecutor(perfectClient(3))
	tbl := docsTable(t, 3)
	if _, err := (SemFilter{TextCol: "year", Criterion: "contains:x"}).Apply(ex, tbl); !errors.Is(err, ErrNotText) {
		t.Errorf("err = %v", err)
	}
	if _, err := (SemFilter{TextCol: "missing", Criterion: "contains:x"}).Apply(ex, tbl); !errors.Is(err, relation.ErrColumn) {
		t.Errorf("err = %v", err)
	}
}

func TestSemExtract(t *testing.T) {
	ex := NewExecutor(perfectClient(4))
	tbl, _ := relation.NewTable("recs", relation.Schema{{Name: "body", Type: relation.String}})
	tbl.MustInsert(relation.Row{"name: alpha\nowner: ann\n"})
	tbl.MustInsert(relation.Row{"name: beta\nowner: bob\n"})
	out, err := SemExtract{TextCol: "body", Attribute: "owner"}.Apply(ex, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Schema) != 2 {
		t.Fatalf("schema = %v", out.Schema)
	}
	if v, _ := out.Get(0, "owner"); v != "ann" {
		t.Errorf("row 0 owner = %v", v)
	}
	if v, _ := out.Get(1, "owner"); v != "bob" {
		t.Errorf("row 1 owner = %v", v)
	}
}

func TestPipelineClassicalThenSemantic(t *testing.T) {
	ex := NewExecutor(perfectClient(5))
	tbl := docsTable(t, 60)
	p := NewPipeline(
		ClassicalFilter{Col: "year", Pred: func(v relation.Value) bool { return v == int64(2024) }, EstSelectivity: 0.5},
		SemFilter{TextCol: "body", Criterion: "contains:merger", EstSelectivity: 0.33},
	)
	out, err := p.Run(ex, tbl)
	if err != nil {
		t.Fatal(err)
	}
	// i%2==0 and i%3==0 -> i%6==0 -> 10 of 60.
	if out.Len() != 10 {
		t.Errorf("rows = %d, want 10", out.Len())
	}
	if ex.Calls != 30 {
		t.Errorf("semantic calls = %d, want 30 (after classical cut)", ex.Calls)
	}
}

func TestOptimizePutsClassicalFirst(t *testing.T) {
	sem := SemFilter{TextCol: "body", Criterion: "contains:merger", EstSelectivity: 0.3}
	cls := ClassicalFilter{Col: "year", Pred: func(v relation.Value) bool { return true }, EstSelectivity: 0.5}
	ops := Optimize([]Op{sem, cls})
	if ops[0].Semantic() {
		t.Error("semantic op not moved after classical")
	}
}

func TestOptimizeOrdersSemanticBySelectivity(t *testing.T) {
	loose := SemFilter{TextCol: "body", Criterion: "contains:a", EstSelectivity: 0.9}
	tight := SemFilter{TextCol: "body", Criterion: "contains:b", EstSelectivity: 0.1}
	ops := Optimize([]Op{loose, tight})
	first, ok := ops[0].(SemFilter)
	if !ok || first.Criterion != "contains:b" {
		t.Errorf("selective filter not first: %+v", ops[0])
	}
}

func TestOptimizeExtractIsBarrier(t *testing.T) {
	ext := SemExtract{TextCol: "body", Attribute: "owner"}
	post := ClassicalFilter{Col: "owner", Pred: func(v relation.Value) bool { return true }, EstSelectivity: 0.5}
	ops := Optimize([]Op{ext, post})
	if _, ok := ops[0].(SemExtract); !ok {
		t.Error("filter crossed an extract barrier it depends on")
	}
}

func TestOptimizedPlanCheaperSameResult(t *testing.T) {
	naiveEx := NewExecutor(perfectClient(6))
	optEx := NewExecutor(perfectClient(6))
	tblA := docsTable(t, 60)

	naiveOps := []Op{
		SemFilter{TextCol: "body", Criterion: "contains:merger", EstSelectivity: 0.33},
		ClassicalFilter{Col: "year", Pred: func(v relation.Value) bool { return v == int64(2024) }, EstSelectivity: 0.5},
	}
	naiveOut, err := NewPipeline(naiveOps...).Run(naiveEx, tblA)
	if err != nil {
		t.Fatal(err)
	}
	optOut, err := NewPipeline(Optimize(naiveOps)...).Run(optEx, tblA)
	if err != nil {
		t.Fatal(err)
	}
	if naiveOut.Len() != optOut.Len() {
		t.Fatalf("results differ: %d vs %d", naiveOut.Len(), optOut.Len())
	}
	if optEx.Calls >= naiveEx.Calls {
		t.Errorf("optimized calls %d >= naive %d", optEx.Calls, naiveEx.Calls)
	}
}

func TestSemJoin(t *testing.T) {
	ex := NewExecutor(perfectClient(7))
	docs, _ := relation.NewTable("docs", relation.Schema{{Name: "body", Type: relation.String}})
	docs.MustInsert(relation.Row{"today acme announced a new product"})
	docs.MustInsert(relation.Row{"bolt shares dropped sharply"})
	docs.MustInsert(relation.Row{"nothing about any company"})
	comps, _ := relation.NewTable("comps", relation.Schema{{Name: "name", Type: relation.String}, {Name: "sector", Type: relation.String}})
	comps.MustInsert(relation.Row{"acme", "tech"})
	comps.MustInsert(relation.Row{"bolt", "tech"})
	out, err := SemJoin(ex, docs, comps, "body", "name")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("joined rows = %d, want 2", out.Len())
	}
	if ex.Calls != 6 {
		t.Errorf("calls = %d, want 6 (3x2 pairs)", ex.Calls)
	}
	if _, err := out.Schema.Index("sector"); err != nil {
		t.Error("right columns missing from join output")
	}
}

func TestSemTopK(t *testing.T) {
	ex := NewExecutor(perfectClient(8))
	tbl := docsTable(t, 12)
	out, err := SemTopK(ex, tbl, "body", "contains:merger", 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("rows = %d", out.Len())
	}
	// All top rows must actually mention merger (perfect model).
	for i := 0; i < out.Len(); i++ {
		body, _ := out.Get(i, "body")
		id, _ := out.Get(i, "id")
		if id.(int64)%3 != 0 {
			t.Errorf("row %d (%v) does not satisfy criterion: %v", i, id, body)
		}
	}
}

func TestSemAggCount(t *testing.T) {
	ex := NewExecutor(perfectClient(9))
	tbl := docsTable(t, 30)
	n, err := SemAggCount(ex, tbl, "body", "contains:merger")
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("count = %d, want 10", n)
	}
}

func TestCascadeClientReducesCostInPipeline(t *testing.T) {
	tbl := docsTable(t, 90)
	ops := []Op{SemFilter{TextCol: "body", Criterion: "contains:merger", EstSelectivity: 0.33}}

	expensiveEx := NewExecutor(llm.NewSimulator(llm.LargeModel(), 10))
	if _, err := NewPipeline(ops...).Run(expensiveEx, tbl); err != nil {
		t.Fatal(err)
	}

	cascade := llm.NewCascade(llm.NewSimulator(llm.SmallModel(), 10), llm.NewSimulator(llm.LargeModel(), 10), 0.3)
	cascadeEx := NewExecutor(cascade)
	if _, err := NewPipeline(ops...).Run(cascadeEx, tbl); err != nil {
		t.Fatal(err)
	}
	if cascadeEx.CostUSD >= expensiveEx.CostUSD {
		t.Errorf("cascade cost %v >= large-only %v", cascadeEx.CostUSD, expensiveEx.CostUSD)
	}
}

func BenchmarkSemFilter(b *testing.B) {
	client := llm.NewSimulator(llm.LargeModel(), 1)
	tbl, _ := relation.NewTable("t", relation.Schema{{Name: "body", Type: relation.String}})
	for i := 0; i < 200; i++ {
		tbl.MustInsert(relation.Row{fmt.Sprintf("document %d about earnings and mergers", i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := NewExecutor(client)
		if _, err := (SemFilter{TextCol: "body", Criterion: "contains:merger"}).Apply(ex, tbl); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOpMetadataAccessors(t *testing.T) {
	cls := ClassicalFilter{Col: "x", Pred: func(relation.Value) bool { return true }}
	if cls.Semantic() || cls.CostPerRow() != 0 || cls.Selectivity() != 0.5 {
		t.Error("ClassicalFilter metadata defaults")
	}
	cls.EstSelectivity = 2 // out of range -> default
	if cls.Selectivity() != 0.5 {
		t.Error("out-of-range selectivity not defaulted")
	}
	sem := SemFilter{TextCol: "t", Criterion: "contains:x"}
	if !sem.Semantic() || sem.CostPerRow() != 1 || sem.Selectivity() != 0.5 {
		t.Error("SemFilter metadata defaults")
	}
	ext := SemExtract{TextCol: "t", Attribute: "a"}
	if !ext.Semantic() || ext.Selectivity() != 1 || ext.CostPerRow() != 1 {
		t.Error("SemExtract metadata")
	}
	p := NewPipeline(sem, ext)
	if len(p.Ops()) != 2 {
		t.Errorf("Ops = %d", len(p.Ops()))
	}
}
