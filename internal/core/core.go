// Package core is the Figure 1 orchestration layer — the paper's actual
// contribution: an architecture in which LLM4Data techniques (RAG,
// semantic operators, lake planning) and Data4LLM techniques (preparation,
// training, serving) compose around a shared model hub.
//
// Three pieces live here:
//
//   - Hub: the "LLM Hub" box — a registry of model clients with routing
//     and per-model response caching.
//   - Pipeline: named data-processing stages composed over document
//     collections, with per-stage accounting — the unified
//     "LLM-in-the-loop data preparation" the paper's open challenges call
//     for (§2.4), assembled from package dataprep's primitives.
//   - Flywheel: the §2.4 "data flywheel" — serve, collect feedback,
//     fold feedback back into the data, measurably improving the served
//     model (experiment E17).
package core

import (
	"errors"
	"fmt"
	"sort"

	"dataai/internal/llm"
)

// Errors callers branch on.
var (
	// ErrUnknownModel indicates a Hub lookup for an unregistered name.
	ErrUnknownModel = errors.New("core: unknown model")
	// ErrNoStages indicates an empty pipeline.
	ErrNoStages = errors.New("core: pipeline has no stages")
)

// Hub routes completion calls to registered model clients.
type Hub struct {
	clients map[string]llm.Client
	caches  map[string]*llm.Cache
	def     string
	order   []string
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{clients: make(map[string]llm.Client), caches: make(map[string]*llm.Cache)}
}

// Register adds a client under name. withCache wraps it in a shared
// response cache (the §2.2.1 cost-efficiency principle). The first
// registered model becomes the default.
func (h *Hub) Register(name string, c llm.Client, withCache bool) error {
	if name == "" || c == nil {
		return fmt.Errorf("core: register needs a name and client")
	}
	if _, dup := h.clients[name]; dup {
		return fmt.Errorf("core: model %q already registered", name)
	}
	if withCache {
		cache := llm.NewCache(c)
		h.caches[name] = cache
		c = cache
	}
	h.clients[name] = c
	h.order = append(h.order, name)
	if h.def == "" {
		h.def = name
	}
	return nil
}

// SetDefault picks the model used by Default.
func (h *Hub) SetDefault(name string) error {
	if _, ok := h.clients[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	h.def = name
	return nil
}

// Client returns the named client.
func (h *Hub) Client(name string) (llm.Client, error) {
	c, ok := h.clients[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return c, nil
}

// Default returns the default client, or nil when none is registered.
func (h *Hub) Default() llm.Client {
	if h.def == "" {
		return nil
	}
	return h.clients[h.def]
}

// Models lists registered names in registration order.
func (h *Hub) Models() []string { return append([]string(nil), h.order...) }

// CacheStats sums hits and misses across cached models.
func (h *Hub) CacheStats() (hits, misses int64) {
	names := make([]string, 0, len(h.caches))
	for n := range h.caches {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		hi, mi := h.caches[n].Stats()
		hits += hi
		misses += mi
	}
	return hits, misses
}

// Stage is one pipeline step over a document collection.
type Stage struct {
	Name string
	// Fn transforms the collection. Returning an error aborts the run.
	Fn func(docs []string) ([]string, error)
}

// StageReport records one executed stage.
type StageReport struct {
	Name    string
	In, Out int
}

// Pipeline composes stages.
type Pipeline struct {
	stages []Stage
}

// NewPipeline builds a pipeline from stages.
func NewPipeline(stages ...Stage) *Pipeline { return &Pipeline{stages: stages} }

// Append adds a stage and returns the pipeline for chaining.
func (p *Pipeline) Append(s Stage) *Pipeline {
	p.stages = append(p.stages, s)
	return p
}

// Run executes the stages in order.
func (p *Pipeline) Run(docs []string) ([]string, []StageReport, error) {
	if len(p.stages) == 0 {
		return nil, nil, ErrNoStages
	}
	reports := make([]StageReport, 0, len(p.stages))
	cur := docs
	for i, s := range p.stages {
		out, err := s.Fn(cur)
		if err != nil {
			return nil, reports, fmt.Errorf("core: stage %d (%s): %w", i, s.Name, err)
		}
		reports = append(reports, StageReport{Name: s.Name, In: len(cur), Out: len(out)})
		cur = out
	}
	return cur, reports, nil
}
