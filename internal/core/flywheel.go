package core

import (
	"fmt"
	"math/rand"
	"regexp"

	"dataai/internal/corpus"
	"dataai/internal/docstore"
	"dataai/internal/rag"
)

// Flywheel implements §2.4's "self-reinforcing cycle where data
// collection, analysis, and application continuously enhance model
// accuracy and serving quality, while in turn driving further data
// generation": a RAG-served QA system whose wrong or refused answers
// trigger user feedback; accepted feedback is converted into new
// documents (the data-preparation step) and ingested, so later traffic
// over the same question distribution is answered better.
type Flywheel struct {
	pipeline *rag.Pipeline
	// FeedbackRate is the probability a user corrects a wrong answer.
	FeedbackRate float64
	rng          *rand.Rand
	ingested     int
	seen         map[string]bool
	// byQuestion maps a corrected question to its feedback document id,
	// so later retractions (a user withdrawing or fixing feedback) can
	// remove exactly that knowledge.
	byQuestion map[string]string
}

// NewFlywheel wraps a RAG pipeline. feedbackRate in [0,1].
func NewFlywheel(p *rag.Pipeline, feedbackRate float64, seed int64) (*Flywheel, error) {
	if p == nil {
		return nil, fmt.Errorf("core: flywheel needs a pipeline")
	}
	if feedbackRate < 0 || feedbackRate > 1 {
		return nil, fmt.Errorf("core: feedback rate %v out of range", feedbackRate)
	}
	return &Flywheel{
		pipeline:     p,
		FeedbackRate: feedbackRate,
		rng:          rand.New(rand.NewSource(seed)),
		seen:         make(map[string]bool),
		byQuestion:   make(map[string]string),
	}, nil
}

// IterationReport summarizes one flywheel turn.
type IterationReport struct {
	Served    int
	Correct   int
	Feedback  int
	NewDocs   int
	TotalDocs int
}

// Accuracy is Correct/Served.
func (r IterationReport) Accuracy() float64 {
	if r.Served == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Served)
}

var flywheelQuestionRe = regexp.MustCompile(`^What is the (.+) of (.+)\?$`)

// Iterate serves the batch of QA traffic, collects feedback on failures,
// and ingests the corrected knowledge.
func (f *Flywheel) Iterate(batch []corpus.QA) (IterationReport, error) {
	var rep IterationReport
	type correction struct {
		question, answer string
	}
	var pending []correction
	for _, qa := range batch {
		ans, err := f.pipeline.Answer(qa.Question)
		if err != nil {
			return rep, fmt.Errorf("core: flywheel serve: %w", err)
		}
		rep.Served++
		if ans.Text == qa.Answer {
			rep.Correct++
			continue
		}
		// Wrong or refused: the user supplies the correction with
		// probability FeedbackRate (§2.4's feedback loop).
		if f.rng.Float64() < f.FeedbackRate {
			pending = append(pending, correction{qa.Question, qa.Answer})
			rep.Feedback++
		}
	}
	// Data preparation: convert corrections into knowledge documents and
	// ingest ones not already folded in.
	for _, c := range pending {
		doc := correctionDoc(c.question, c.answer)
		if doc == "" || f.seen[doc] {
			continue
		}
		f.seen[doc] = true
		f.ingested++
		id := fmt.Sprintf("feedback-%05d", f.ingested)
		if err := f.pipeline.Ingest([]docstore.Document{{ID: id, Text: doc}}); err != nil {
			return rep, fmt.Errorf("core: flywheel ingest: %w", err)
		}
		f.byQuestion[c.question] = id
		rep.NewDocs++
	}
	rep.TotalDocs = f.pipeline.ChunkCount()
	return rep, nil
}

// Retract withdraws previously ingested feedback for a question — the
// flywheel's data-quality escape hatch: user corrections are themselves
// data that can be wrong, and a loop that can only add knowledge
// compounds errors as readily as facts.
func (f *Flywheel) Retract(question string) error {
	id, ok := f.byQuestion[question]
	if !ok {
		return fmt.Errorf("core: no feedback recorded for %q", question)
	}
	if err := f.pipeline.Remove(id); err != nil {
		return fmt.Errorf("core: retract: %w", err)
	}
	delete(f.byQuestion, question)
	// Allow the same correction to be re-learned later.
	for doc := range f.seen {
		if docMatchesQuestion(doc, question) {
			delete(f.seen, doc)
		}
	}
	return nil
}

func docMatchesQuestion(doc, question string) bool {
	m := flywheelQuestionRe.FindStringSubmatch(question)
	if m == nil {
		return false
	}
	prefix := fmt.Sprintf("The %s of %s is ", m[1], m[2])
	return len(doc) >= len(prefix) && doc[:len(prefix)] == prefix
}

// correctionDoc restates a corrected QA pair as a fact document the
// retrieval layer (and the grounded model) can use.
func correctionDoc(question, answer string) string {
	m := flywheelQuestionRe.FindStringSubmatch(question)
	if m == nil {
		return ""
	}
	return fmt.Sprintf("The %s of %s is %s.", m[1], m[2], answer)
}
