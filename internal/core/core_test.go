package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dataai/internal/corpus"
	"dataai/internal/dataprep"
	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/llm"
	"dataai/internal/rag"
	"dataai/internal/vecdb"
)

func TestHubRegisterAndRoute(t *testing.T) {
	h := NewHub()
	small := llm.NewSimulator(llm.SmallModel(), 1)
	large := llm.NewSimulator(llm.LargeModel(), 1)
	if err := h.Register("small", small, false); err != nil {
		t.Fatal(err)
	}
	if err := h.Register("large", large, true); err != nil {
		t.Fatal(err)
	}
	if err := h.Register("small", small, false); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := h.Register("", nil, false); err == nil {
		t.Error("empty registration accepted")
	}
	if got := h.Models(); len(got) != 2 || got[0] != "small" {
		t.Errorf("Models = %v", got)
	}
	if h.Default() == nil {
		t.Fatal("no default")
	}
	if _, err := h.Client("large"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Client("missing"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("err = %v", err)
	}
	if err := h.SetDefault("large"); err != nil {
		t.Fatal(err)
	}
	if err := h.SetDefault("missing"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("err = %v", err)
	}
}

func TestHubCacheStats(t *testing.T) {
	h := NewHub()
	sim := llm.NewSimulator(llm.LargeModel(), 2)
	if err := h.Register("m", sim, true); err != nil {
		t.Fatal(err)
	}
	c, _ := h.Client("m")
	p := llm.GeneratePrompt("hello")
	if _, err := c.Complete(llm.Request{Prompt: p, MaxTokens: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(llm.Request{Prompt: p, MaxTokens: 4}); err != nil {
		t.Fatal(err)
	}
	hits, misses := h.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d/%d", hits, misses)
	}
}

func TestPipelineRunsPrepStages(t *testing.T) {
	gen, err := corpus.NewGenerator(corpus.DefaultConfig(91))
	if err != nil {
		t.Fatal(err)
	}
	c := gen.Generate()
	docs := c.Texts()
	mh, err := dataprep.NewMinHasher(64, 16, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(
		Stage{Name: "filter", Fn: func(in []string) ([]string, error) {
			out, _ := dataprep.ApplyFilters(in,
				dataprep.DefaultHeuristicFilter(),
				dataprep.ToxicityFilter{Lexicon: c.ToxicLexicon})
			return out, nil
		}},
		Stage{Name: "dedup", Fn: func(in []string) ([]string, error) {
			kept, _ := mh.Dedup(in, 0.6)
			return kept, nil
		}},
	).Append(Stage{Name: "select", Fn: func(in []string) ([]string, error) {
		idx, err := dataprep.RandomSelector{Seed: 3}.Select(in, 100)
		if err != nil {
			return nil, err
		}
		return dataprep.Pick(in, idx), nil
	}})

	out, reports, err := p.Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Errorf("final docs = %d", len(out))
	}
	if len(reports) != 3 {
		t.Fatalf("stage reports = %d", len(reports))
	}
	if reports[0].In != len(docs) || reports[0].Out <= reports[1].Out && reports[1].In != reports[0].Out {
		t.Errorf("stage accounting broken: %+v", reports)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].In != reports[i-1].Out {
			t.Errorf("stage %d input %d != previous output %d", i, reports[i].In, reports[i-1].Out)
		}
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, _, err := NewPipeline().Run(nil); !errors.Is(err, ErrNoStages) {
		t.Errorf("err = %v", err)
	}
	p := NewPipeline(Stage{Name: "boom", Fn: func([]string) ([]string, error) {
		return nil, errors.New("stage exploded")
	}})
	_, _, err := p.Run([]string{"x"})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

// buildFlywheel constructs the E17 setup: a RAG pipeline over an
// initially *empty* index, QA traffic drawn from a corpus, and a flywheel
// folding feedback in.
func buildFlywheel(t *testing.T, feedbackRate float64) (*Flywheel, []corpus.QA) {
	t.Helper()
	gen, err := corpus.NewGenerator(corpus.DefaultConfig(93))
	if err != nil {
		t.Fatal(err)
	}
	c := gen.Generate()
	m := llm.LargeModel()
	m.ErrRate = 0
	m.HallucinationRate = 0
	m.ContextWindow = 1 << 20
	client := llm.NewSimulator(m, 7)
	e := embed.NewHashEmbedder(embed.DefaultDim)
	p, err := rag.New(client, e, vecdb.NewFlat(e.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	// Seed the index with a small slice of the corpus: initial accuracy
	// is low, and the flywheel must earn the rest through feedback.
	var seedDocs []docstore.Document
	for _, d := range c.Docs[:len(c.Docs)/20] {
		seedDocs = append(seedDocs, docstore.Document{ID: d.ID, Text: d.Text})
	}
	if err := p.Ingest(seedDocs); err != nil {
		t.Fatal(err)
	}
	fw, err := NewFlywheel(p, feedbackRate, 5)
	if err != nil {
		t.Fatal(err)
	}
	var qas []corpus.QA
	for _, qa := range c.QAs {
		if qa.Hops == 1 {
			qas = append(qas, qa)
		}
	}
	return fw, qas
}

func TestFlywheelValidation(t *testing.T) {
	if _, err := NewFlywheel(nil, 0.5, 1); err == nil {
		t.Error("nil pipeline accepted")
	}
}

func TestFlywheelAccuracyCompounds(t *testing.T) {
	fw, qas := buildFlywheel(t, 0.8)
	rng := rand.New(rand.NewSource(9))
	sample := func() []corpus.QA {
		batch := make([]corpus.QA, 40)
		for i := range batch {
			batch[i] = qas[rng.Intn(len(qas))]
		}
		return batch
	}
	var accs []float64
	for iter := 0; iter < 5; iter++ {
		rep, err := fw.Iterate(sample())
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, rep.Accuracy())
		t.Logf("iteration %d: acc=%.2f feedback=%d newDocs=%d", iter, rep.Accuracy(), rep.Feedback, rep.NewDocs)
	}
	if accs[len(accs)-1] <= accs[0] {
		t.Errorf("flywheel did not improve: %v", accs)
	}
	if accs[len(accs)-1] < 0.5 {
		t.Errorf("final accuracy %v too low", accs[len(accs)-1])
	}
}

func TestFlywheelNoFeedbackNoImprovement(t *testing.T) {
	fw, qas := buildFlywheel(t, 0)
	batch := qas[:30]
	first, err := fw.Iterate(batch)
	if err != nil {
		t.Fatal(err)
	}
	second, err := fw.Iterate(batch)
	if err != nil {
		t.Fatal(err)
	}
	if second.NewDocs != 0 || first.NewDocs != 0 {
		t.Error("feedback rate 0 still ingested docs")
	}
	if second.Accuracy() != first.Accuracy() {
		t.Errorf("accuracy changed without feedback: %v -> %v", first.Accuracy(), second.Accuracy())
	}
}

func TestCorrectionDoc(t *testing.T) {
	got := correctionDoc("What is the ceo of Zorvex Fi?", "anor")
	if got != "The ceo of Zorvex Fi is anor." {
		t.Errorf("correctionDoc = %q", got)
	}
	if correctionDoc("unparseable", "x") != "" {
		t.Error("unparseable question should produce no doc")
	}
}

func ExamplePipeline_Run() {
	p := NewPipeline(Stage{Name: "upper", Fn: func(in []string) ([]string, error) {
		out := make([]string, len(in))
		for i, s := range in {
			out[i] = strings.ToUpper(s)
		}
		return out, nil
	}})
	out, reports, _ := p.Run([]string{"a", "b"})
	fmt.Println(out[0], reports[0].Name, reports[0].In, reports[0].Out)
	// Output: A upper 2 2
}

func TestFlywheelRetract(t *testing.T) {
	fw, qas := buildFlywheel(t, 1.0) // every wrong answer gets feedback
	// Find a question the pipeline cannot answer yet, teach it, then
	// retract the teaching.
	var target corpus.QA
	found := false
	for _, qa := range qas {
		rep, err := fw.Iterate([]corpus.QA{qa})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Correct == 0 && rep.NewDocs == 1 {
			target = qa
			found = true
			break
		}
	}
	if !found {
		t.Skip("no teachable question at this seed")
	}
	// Now answered correctly.
	rep, err := fw.Iterate([]corpus.QA{target})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Correct != 1 {
		t.Fatalf("question not learned: %+v", rep)
	}
	// Retract and verify the knowledge is gone.
	if err := fw.Retract(target.Question); err != nil {
		t.Fatal(err)
	}
	rep, err = fw.Iterate([]corpus.QA{target})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Correct != 0 {
		t.Error("answer survived retraction")
	}
	// The retracted correction can be re-learned (seen-set cleared): the
	// failed iteration above should have re-ingested it.
	rep, err = fw.Iterate([]corpus.QA{target})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Correct != 1 {
		t.Error("correction not re-learnable after retraction")
	}
	if err := fw.Retract("never corrected?"); err == nil {
		t.Error("retracting unknown question succeeded")
	}
}
