// Package agent implements the multi-step agent machinery of §2.2.1: a
// tool registry, sequential plan execution with output piping, per-step
// self-reflection, and bounded retries.
//
// The paper lists the agent challenges as "understanding the environment,
// tool invocation, breaking down tasks into multiple steps, reasoning
// through these steps, and self-reflection". Task decomposition lives with
// the callers that own the domain (package lake's planner); this package
// owns the execution half: invoking tools, threading intermediate results,
// noticing bad step outputs, and retrying.
package agent

import (
	"errors"
	"fmt"
	"strings"

	"dataai/internal/llm"
	"dataai/internal/resilient"
)

// Errors callers branch on.
var (
	// ErrUnknownTool indicates a plan step naming an unregistered tool.
	ErrUnknownTool = errors.New("agent: unknown tool")
	// ErrStepFailed indicates a step that kept failing after retries.
	ErrStepFailed = errors.New("agent: step failed")
	// ErrNoSteps indicates an empty plan.
	ErrNoSteps = errors.New("agent: empty plan")
)

// errReflectionReject marks an attempt whose output failed the
// self-reflection check (as opposed to the tool itself erroring).
var errReflectionReject = errors.New("agent: output rejected by reflection")

// Tool is an invocable capability (retriever, SQL runner, extractor, ...).
type Tool interface {
	// Name is the registry key.
	Name() string
	// Description is surfaced to planners choosing among tools.
	Description() string
	// Invoke runs the tool on input and returns its output.
	Invoke(input string) (string, error)
}

// ToolFunc adapts a function to the Tool interface.
type ToolFunc struct {
	ToolName string
	Desc     string
	Fn       func(input string) (string, error)
}

// Name implements Tool.
func (t ToolFunc) Name() string { return t.ToolName }

// Description implements Tool.
func (t ToolFunc) Description() string { return t.Desc }

// Invoke implements Tool.
func (t ToolFunc) Invoke(input string) (string, error) { return t.Fn(input) }

// Action is one planned step. Occurrences of "$prev" in Input are replaced
// by the previous step's output; "$q" by the original task input.
type Action struct {
	Tool  string
	Input string
}

// Step records one executed action.
type Step struct {
	Action  Action
	Input   string // input after substitution
	Output  string
	Retries int
	Err     string
}

// Trace is the record of a plan execution.
type Trace struct {
	Steps  []Step
	Answer string
	// Failed reports whether execution aborted before the final step.
	Failed bool
	// BackoffMS is the total simulated retry backoff charged across
	// steps (zero unless WithRetryBackoff configured a backoff).
	BackoffMS float64
}

// Option configures an Agent.
type Option func(*Agent)

// WithMaxRetries sets per-step retries after a reflection failure
// (default 1).
func WithMaxRetries(n int) Option { return func(a *Agent) { a.retrier.MaxRetries = n } }

// WithRetryBackoff charges capped exponential backoff with seeded
// jitter between step retries (simulated time, surfaced on
// Trace.BackoffMS — never slept). Without it retries remain immediate
// and free, the legacy behaviour.
func WithRetryBackoff(baseMS, maxMS float64, seed uint64) Option {
	return func(a *Agent) {
		a.retrier.BaseBackoffMS = baseMS
		a.retrier.MaxBackoffMS = maxMS
		a.retrier.JitterFrac = 0.5
		a.retrier.Seed = seed
	}
}

// WithoutReflection disables the self-reflection check; steps are
// accepted as-is (the ablation arm of E5).
func WithoutReflection() Option { return func(a *Agent) { a.reflect = false } }

// Agent executes plans over a tool registry.
type Agent struct {
	tools   map[string]Tool
	order   []string
	retrier resilient.Retrier
	reflect bool
}

// New returns an agent with the given tools registered.
func New(tools []Tool, opts ...Option) (*Agent, error) {
	a := &Agent{tools: make(map[string]Tool, len(tools)), retrier: resilient.Retrier{MaxRetries: 1}, reflect: true}
	for _, t := range tools {
		if t.Name() == "" {
			return nil, fmt.Errorf("agent: tool with empty name")
		}
		if _, dup := a.tools[t.Name()]; dup {
			return nil, fmt.Errorf("agent: duplicate tool %q", t.Name())
		}
		a.tools[t.Name()] = t
		a.order = append(a.order, t.Name())
	}
	for _, o := range opts {
		o(a)
	}
	return a, nil
}

// Tools lists registered tool names in registration order.
func (a *Agent) Tools() []string { return append([]string(nil), a.order...) }

// Describe renders the tool catalog for planner prompts.
func (a *Agent) Describe() string {
	var b strings.Builder
	for _, name := range a.order {
		fmt.Fprintf(&b, "- %s: %s\n", name, a.tools[name].Description())
	}
	return b.String()
}

// Run executes the plan for the task input. The final step's output is the
// answer. A step whose output fails reflection is retried up to the
// configured limit; if it still fails, execution aborts with ErrStepFailed
// and the trace records how far it got.
func (a *Agent) Run(task string, plan []Action) (Trace, error) {
	if len(plan) == 0 {
		return Trace{Failed: true}, ErrNoSteps
	}
	var tr Trace
	prev := ""
	for i, act := range plan {
		tool, ok := a.tools[act.Tool]
		if !ok {
			tr.Failed = true
			return tr, fmt.Errorf("%w: %q (step %d)", ErrUnknownTool, act.Tool, i)
		}
		input := strings.ReplaceAll(act.Input, "$prev", prev)
		input = strings.ReplaceAll(input, "$q", task)

		step := Step{Action: act, Input: input}
		var out string
		retries, backMS, err := a.retrier.Do(input, func(int) error {
			var ierr error
			out, ierr = tool.Invoke(input)
			if ierr != nil {
				return ierr
			}
			if a.reflect && !a.acceptable(out) {
				return errReflectionReject
			}
			return nil
		})
		step.Retries = retries
		tr.BackoffMS += backMS
		if err != nil {
			if errors.Is(err, errReflectionReject) {
				err = fmt.Errorf("%w: step %d output rejected by reflection", ErrStepFailed, i)
			} else {
				err = fmt.Errorf("%w: step %d: %v", ErrStepFailed, i, err)
			}
			step.Output = out
			step.Err = err.Error()
			tr.Steps = append(tr.Steps, step)
			tr.Failed = true
			return tr, err
		}
		step.Output = out
		tr.Steps = append(tr.Steps, step)
		prev = out
	}
	tr.Answer = prev
	return tr, nil
}

// acceptable is the self-reflection predicate: a step output is usable
// when it is non-empty and not an "unknown" refusal. Mirrors the paper's
// "self-reflection is essential for offering precise feedback on task
// breakdown and analysis" — the agent notices a dead-end step instead of
// feeding garbage forward.
func (a *Agent) acceptable(out string) bool {
	out = strings.TrimSpace(out)
	return out != "" && !llm.IsUnknown(out)
}
