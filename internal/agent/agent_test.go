package agent

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func echoTool(name string) Tool {
	return ToolFunc{ToolName: name, Desc: "echoes input", Fn: func(in string) (string, error) {
		return "echo:" + in, nil
	}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Tool{ToolFunc{ToolName: ""}}); err == nil {
		t.Error("empty tool name accepted")
	}
	if _, err := New([]Tool{echoTool("a"), echoTool("a")}); err == nil {
		t.Error("duplicate tool accepted")
	}
}

func TestRunPipesOutputs(t *testing.T) {
	upper := ToolFunc{ToolName: "upper", Desc: "uppercases", Fn: func(in string) (string, error) {
		return strings.ToUpper(in), nil
	}}
	a, err := New([]Tool{echoTool("echo"), upper})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := a.Run("hello", []Action{
		{Tool: "echo", Input: "$q"},
		{Tool: "upper", Input: "$prev world"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Answer != "ECHO:HELLO WORLD" {
		t.Errorf("answer = %q", tr.Answer)
	}
	if len(tr.Steps) != 2 || tr.Failed {
		t.Errorf("trace = %+v", tr)
	}
	if tr.Steps[0].Input != "hello" {
		t.Errorf("$q substitution failed: %q", tr.Steps[0].Input)
	}
}

func TestRunUnknownTool(t *testing.T) {
	a, _ := New([]Tool{echoTool("echo")})
	_, err := a.Run("x", []Action{{Tool: "nope", Input: "y"}})
	if !errors.Is(err, ErrUnknownTool) {
		t.Errorf("err = %v", err)
	}
}

func TestRunEmptyPlan(t *testing.T) {
	a, _ := New([]Tool{echoTool("echo")})
	if _, err := a.Run("x", nil); !errors.Is(err, ErrNoSteps) {
		t.Errorf("err = %v", err)
	}
}

func TestReflectionRetriesThenSucceeds(t *testing.T) {
	calls := 0
	flaky := ToolFunc{ToolName: "flaky", Desc: "fails once", Fn: func(in string) (string, error) {
		calls++
		if calls == 1 {
			return "unknown", nil // reflection rejects
		}
		return "good answer", nil
	}}
	a, _ := New([]Tool{flaky}, WithMaxRetries(2))
	tr, err := a.Run("x", []Action{{Tool: "flaky", Input: "go"}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Answer != "good answer" {
		t.Errorf("answer = %q", tr.Answer)
	}
	if tr.Steps[0].Retries != 1 {
		t.Errorf("retries = %d, want 1", tr.Steps[0].Retries)
	}
}

func TestReflectionAbortsAfterRetries(t *testing.T) {
	dead := ToolFunc{ToolName: "dead", Desc: "always unknown", Fn: func(in string) (string, error) {
		return "unknown", nil
	}}
	a, _ := New([]Tool{dead}, WithMaxRetries(2))
	tr, err := a.Run("x", []Action{{Tool: "dead", Input: "go"}})
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v", err)
	}
	if !tr.Failed {
		t.Error("trace not marked failed")
	}
	if tr.Steps[0].Err == "" {
		t.Error("step error not recorded")
	}
}

func TestWithoutReflectionAcceptsAnything(t *testing.T) {
	dead := ToolFunc{ToolName: "dead", Desc: "always unknown", Fn: func(in string) (string, error) {
		return "unknown", nil
	}}
	a, _ := New([]Tool{dead}, WithoutReflection())
	tr, err := a.Run("x", []Action{{Tool: "dead", Input: "go"}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Answer != "unknown" {
		t.Errorf("answer = %q", tr.Answer)
	}
}

func TestToolErrorsRetryThenAbort(t *testing.T) {
	calls := 0
	erroring := ToolFunc{ToolName: "err", Desc: "errors", Fn: func(in string) (string, error) {
		calls++
		return "", fmt.Errorf("boom %d", calls)
	}}
	a, _ := New([]Tool{erroring}, WithMaxRetries(1))
	_, err := a.Run("x", []Action{{Tool: "err", Input: "go"}})
	if !errors.Is(err, ErrStepFailed) {
		t.Errorf("err = %v", err)
	}
	if calls != 2 {
		t.Errorf("tool called %d times, want 2 (1 retry)", calls)
	}
}

func TestDescribeAndTools(t *testing.T) {
	a, _ := New([]Tool{echoTool("alpha"), echoTool("beta")})
	d := a.Describe()
	if !strings.Contains(d, "alpha") || !strings.Contains(d, "beta") {
		t.Errorf("Describe = %q", d)
	}
	tools := a.Tools()
	if len(tools) != 2 || tools[0] != "alpha" {
		t.Errorf("Tools = %v", tools)
	}
}

func TestPartialTraceOnMidPlanFailure(t *testing.T) {
	dead := ToolFunc{ToolName: "dead", Desc: "fails", Fn: func(in string) (string, error) {
		return "", errors.New("nope")
	}}
	a, _ := New([]Tool{echoTool("echo"), dead}, WithMaxRetries(0))
	tr, err := a.Run("x", []Action{
		{Tool: "echo", Input: "first"},
		{Tool: "dead", Input: "second"},
		{Tool: "echo", Input: "never"},
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if len(tr.Steps) != 2 {
		t.Errorf("steps recorded = %d, want 2", len(tr.Steps))
	}
	if tr.Answer != "" {
		t.Errorf("answer should be empty on failure, got %q", tr.Answer)
	}
}
