package lake

import (
	"strings"
	"testing"

	"dataai/internal/corpus"
	"dataai/internal/embed"
	"dataai/internal/llm"
)

func testCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	cfg := corpus.DefaultConfig(31)
	cfg.EntitiesPerDomain = 15
	cfg.DocsPerDomainWeight = 20
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate()
}

func testLake(t *testing.T) (*Lake, *corpus.Corpus) {
	t.Helper()
	c := testCorpus(t)
	l, err := BuildFromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	return l, c
}

func perfectClient(seed uint64) *llm.Simulator {
	m := llm.LargeModel()
	m.ErrRate = 0
	m.HallucinationRate = 0
	m.ContextWindow = 1 << 20
	return llm.NewSimulator(m, seed)
}

func TestBuildFromCorpusShape(t *testing.T) {
	l, c := testLake(t)
	if len(l.Items)%3 != 0 {
		t.Errorf("items = %d, want a multiple of 3", len(l.Items))
	}
	counts := map[Modality]int{}
	for _, it := range l.Items {
		counts[it.Modality]++
		if it.Entity == "" || it.Domain == "" {
			t.Fatalf("item %s missing entity/domain", it.ID)
		}
	}
	if counts[Structured] != counts[SemiStructured] || counts[Structured] != counts[Unstructured] {
		t.Errorf("modality counts unbalanced: %v", counts)
	}
	if len(l.Tables) != len(c.Domains) {
		t.Errorf("tables = %d, want %d", len(l.Tables), len(c.Domains))
	}
	for d, tbl := range l.Tables {
		if tbl.Len() == 0 {
			t.Errorf("domain table %s empty", d)
		}
	}
}

func TestItemDescriptions(t *testing.T) {
	l, _ := testLake(t)
	for _, it := range l.Items[:9] {
		d := it.Description()
		if d == "" {
			t.Fatalf("item %s has empty description", it.ID)
		}
		// Semi-structured sources key entities in identifier form
		// (spaces stripped); the other modalities use the natural name.
		want := it.Entity
		if it.Modality == SemiStructured {
			want = strings.ReplaceAll(it.Entity, " ", "")
		}
		if !strings.Contains(d, want) {
			t.Errorf("%s description lacks entity %q: %q", it.ID, want, d)
		}
	}
}

func TestItemByID(t *testing.T) {
	l, _ := testLake(t)
	it, ok := l.ItemByID(l.Items[5].ID)
	if !ok || it.ID != l.Items[5].ID {
		t.Error("ItemByID failed")
	}
	if _, ok := l.ItemByID("nope"); ok {
		t.Error("found nonexistent item")
	}
}

func TestEmbeddingLinkingBeatsLexical(t *testing.T) {
	l, _ := testLake(t)
	e := embed.NewHashEmbedder(embed.DefaultDim)
	embLinks, err := l.LinkEmbedding(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	lexLinks, err := l.LinkLexical(1)
	if err != nil {
		t.Fatal(err)
	}
	embP, embR := l.LinkingQuality(embLinks)
	lexP, lexR := l.LinkingQuality(lexLinks)
	t.Logf("embedding P=%.3f R=%.3f; lexical P=%.3f R=%.3f", embP, embR, lexP, lexR)
	if embP < 0.6 {
		t.Errorf("embedding linking precision %v too low", embP)
	}
	if embR < 0.6 {
		t.Errorf("embedding linking recall %v too low", embR)
	}
	// Embedding linking should not be materially worse than lexical
	// (it is usually better on cross-format descriptions).
	if embP+0.05 < lexP && embR+0.05 < lexR {
		t.Errorf("embedding (%v/%v) worse than lexical (%v/%v)", embP, embR, lexP, lexR)
	}
}

func TestLinkingEmptyLake(t *testing.T) {
	l := &Lake{}
	e := embed.NewHashEmbedder(32)
	if _, err := l.LinkEmbedding(e, 2); err == nil {
		t.Error("empty lake linking should fail")
	}
	if _, err := l.LinkLexical(2); err == nil {
		t.Error("empty lake lexical linking should fail")
	}
}

func TestPlannerClassify(t *testing.T) {
	l, _ := testLake(t)
	p, err := NewPlanner(perfectClient(1), l, embed.NewHashEmbedder(embed.DefaultDim))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]QueryKind{
		"What is the ceo of Zorvex Fi?":                        KindLookup,
		"What is the revenue of the entity whose ceo is anor?": KindTwoHop,
		"How many finance entities have sector anet?":          KindCount,
	}
	for q, want := range cases {
		got, err := p.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Classify(%q) = %v, want %v", q, got, want)
		}
	}
}

func TestNL2SQL(t *testing.T) {
	l, _ := testLake(t)
	p, err := NewPlanner(perfectClient(2), l, embed.NewHashEmbedder(embed.DefaultDim))
	if err != nil {
		t.Fatal(err)
	}
	sql, err := p.nl2sql("How many finance entities have release year anet?")
	if err == nil {
		// finance has no release_year column; execution would fail, but
		// translation may still succeed syntactically. Accept either.
		_ = sql
	}
	sql, err = p.nl2sql("How many finance entities have ceo anet?")
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT count(*) FROM finance WHERE ceo = 'anet'"
	if sql != want {
		t.Errorf("sql = %q, want %q", sql, want)
	}
	if _, err := p.nl2sql("not a count question"); err == nil {
		t.Error("unparseable question accepted")
	}
	if _, err := p.nl2sql("How many nowhere entities have x y?"); err == nil {
		t.Error("unknown domain accepted")
	}
}

func TestPlannerAnswersAllKinds(t *testing.T) {
	l, c := testLake(t)
	p, err := NewPlanner(perfectClient(3), l, embed.NewHashEmbedder(embed.DefaultDim))
	if err != nil {
		t.Fatal(err)
	}
	queries := GenerateQueries(l, c, 10, 7)
	byKind := map[QueryKind][2]int{} // correct, total
	for _, q := range queries {
		got, _, err := p.Answer(q.Text)
		cur := byKind[q.Kind]
		cur[1]++
		if err == nil && got == q.Gold {
			cur[0]++
		}
		byKind[q.Kind] = cur
	}
	for kind, ct := range byKind {
		if ct[1] == 0 {
			t.Errorf("no %s queries generated", kind)
			continue
		}
		frac := float64(ct[0]) / float64(ct[1])
		t.Logf("%s: %d/%d", kind, ct[0], ct[1])
		min := 0.6
		if kind == KindCount {
			min = 0.9 // SQL path is exact once planned correctly
		}
		if frac < min {
			t.Errorf("%s accuracy %v below %v", kind, frac, min)
		}
	}
}

func TestPlannerBeatsSingleShotOnCounts(t *testing.T) {
	l, c := testLake(t)
	p, err := NewPlanner(perfectClient(4), l, embed.NewHashEmbedder(embed.DefaultDim))
	if err != nil {
		t.Fatal(err)
	}
	queries := GenerateQueries(l, c, 12, 8)
	planner, single, total := 0, 0, 0
	for _, q := range queries {
		if q.Kind != KindCount {
			continue
		}
		total++
		if got, _, err := p.Answer(q.Text); err == nil && got == q.Gold {
			planner++
		}
		if got, err := p.SingleShot(q.Text); err == nil && got == q.Gold {
			single++
		}
	}
	if total == 0 {
		t.Fatal("no count queries")
	}
	if planner <= single {
		t.Errorf("planner %d/%d not better than single-shot %d/%d", planner, total, single, total)
	}
}

func TestGenerateQueriesGoldCounts(t *testing.T) {
	l, c := testLake(t)
	queries := GenerateQueries(l, c, 20, 3)
	n := 0
	for _, q := range queries {
		if q.Kind != KindCount {
			continue
		}
		n++
		if q.Gold == "0" {
			t.Errorf("count query %q has zero gold", q.Text)
		}
	}
	if n == 0 {
		t.Error("no count queries generated")
	}
}

func TestSanitizeColumn(t *testing.T) {
	if got := SanitizeColumn("release year"); got != "release_year" {
		t.Errorf("SanitizeColumn = %q", got)
	}
	if got := displayRel("release_year"); got != "release year" {
		t.Errorf("displayRel = %q", got)
	}
}

func BenchmarkPlannerAnswer(b *testing.B) {
	cfg := corpus.DefaultConfig(31)
	cfg.EntitiesPerDomain = 15
	cfg.DocsPerDomainWeight = 20
	gen, _ := corpus.NewGenerator(cfg)
	c := gen.Generate()
	l, err := BuildFromCorpus(c)
	if err != nil {
		b.Fatal(err)
	}
	m := llm.LargeModel()
	m.ContextWindow = 1 << 20
	p, err := NewPlanner(llm.NewSimulator(m, 1), l, embed.NewHashEmbedder(embed.DefaultDim))
	if err != nil {
		b.Fatal(err)
	}
	queries := GenerateQueries(l, c, 10, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, _, err := p.Answer(q.Text); err != nil && err.Error() == "" {
			b.Fatal(err)
		}
	}
}
