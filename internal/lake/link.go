package lake

import (
	"fmt"

	"dataai/internal/embed"
	"dataai/internal/token"
	"dataai/internal/vecdb"
)

// Links maps item ID -> ranked related item IDs (self excluded).
type Links map[string][]string

// LinkEmbedding links items by similarity of their unified description
// embeddings (the AOP method): each item's description is embedded, and
// for every other modality the item's nearest perModality neighbors in
// that modality become its links. Restricting candidates to *other*
// modalities is the point of cross-modal schema linking — within one
// modality, records of different entities share format vocabulary
// (column names, key paths) and would swamp the entity signal.
func (l *Lake) LinkEmbedding(e embed.Embedder, perModality int) (Links, error) {
	if len(l.Items) == 0 {
		return nil, ErrEmptyLake
	}
	idx := vecdb.NewFlat(e.Dim())
	modality := make(map[string]Modality, len(l.Items))
	for _, it := range l.Items {
		if err := idx.Add(it.ID, e.Embed(it.Description())); err != nil {
			return nil, fmt.Errorf("lake: link index: %w", err)
		}
		modality[it.ID] = it.Modality
	}
	out := make(Links, len(l.Items))
	for _, it := range l.Items {
		vec := e.Embed(it.Description())
		var ids []string
		for _, m := range []Modality{Structured, SemiStructured, Unstructured} {
			if m == it.Modality {
				continue
			}
			m := m
			res, err := idx.SearchFilter(vec, perModality, func(id string) bool {
				return modality[id] == m
			})
			if err != nil {
				return nil, fmt.Errorf("lake: link search: %w", err)
			}
			for _, r := range res {
				ids = append(ids, r.ID)
			}
		}
		out[it.ID] = ids
	}
	return out, nil
}

// LinkLexical is the baseline: Jaccard similarity of description token
// sets, with the same cross-modality candidate restriction as
// LinkEmbedding. It represents pre-embedding linking — textual overlap
// without semantic weighting.
func (l *Lake) LinkLexical(perModality int) (Links, error) {
	if len(l.Items) == 0 {
		return nil, ErrEmptyLake
	}
	sets := make([]map[string]bool, len(l.Items))
	for i, it := range l.Items {
		set := make(map[string]bool)
		for _, t := range token.Tokenize(it.Description()) {
			set[t] = true
		}
		sets[i] = set
	}
	out := make(Links, len(l.Items))
	for i, it := range l.Items {
		var ids []string
		for _, m := range []Modality{Structured, SemiStructured, Unstructured} {
			if m == it.Modality {
				continue
			}
			type cand struct {
				id  string
				sim float64
			}
			var cands []cand
			for j, other := range l.Items {
				if i == j || other.Modality != m {
					continue
				}
				cands = append(cands, cand{other.ID, jaccard(sets[i], sets[j])})
			}
			// Partial selection of the top perModality, ties by ID.
			for a := 0; a < perModality && a < len(cands); a++ {
				best := a
				for b := a + 1; b < len(cands); b++ {
					if cands[b].sim > cands[best].sim ||
						(cands[b].sim == cands[best].sim && cands[b].id < cands[best].id) {
						best = b
					}
				}
				cands[a], cands[best] = cands[best], cands[a]
			}
			n := perModality
			if n > len(cands) {
				n = len(cands)
			}
			for a := 0; a < n; a++ {
				ids = append(ids, cands[a].id)
			}
		}
		out[it.ID] = ids
	}
	return out, nil
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	inter := 0
	for t := range small {
		if large[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// LinkingQuality scores links against the gold entity grouping: for each
// item, the relevant set is the other items describing the same entity.
// Returns micro-averaged precision and recall over all items.
func (l *Lake) LinkingQuality(links Links) (precision, recall float64) {
	byEntity := make(map[string][]string)
	for _, it := range l.Items {
		byEntity[it.Entity] = append(byEntity[it.Entity], it.ID)
	}
	var tp, fp, fn int
	for _, it := range l.Items {
		relevant := make(map[string]bool)
		for _, id := range byEntity[it.Entity] {
			if id != it.ID {
				relevant[id] = true
			}
		}
		got := links[it.ID]
		hit := 0
		for _, id := range got {
			if relevant[id] {
				hit++
			}
		}
		tp += hit
		fp += len(got) - hit
		fn += len(relevant) - hit
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}
