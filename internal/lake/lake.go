// Package lake implements data-lake analytics over hybrid multi-modal
// collections (§2.2.2 "Data Lake Analytics"): structured tables,
// semi-structured key-value documents, and unstructured text describing
// overlapping entities.
//
// Two surveyed techniques are reproduced:
//
//   - Schema linking (AOP [59]): every modality has a literal description
//     — structured data its schema and values, semi-structured data its
//     key paths, text its content. Converting those descriptions into one
//     embedding space lets similarity search link records about the same
//     entity across modalities (experiment E4, vs. a lexical baseline).
//   - Planning (SYMPHONY [15] / CAESURA [53] / iDataLake [60]): natural-
//     language queries are decomposed into typed sub-query pipelines over
//     tools (retrieve, NL2SQL+SQL, iterative RAG) executed by the agent
//     machinery (experiment E5, vs. a single-shot LLM answer).
package lake

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dataai/internal/corpus"
	"dataai/internal/relation"
)

// Modality labels an item's data type.
type Modality int

// The three lake modalities.
const (
	Structured Modality = iota
	SemiStructured
	Unstructured
)

// String names the modality.
func (m Modality) String() string {
	switch m {
	case Structured:
		return "structured"
	case SemiStructured:
		return "semi-structured"
	case Unstructured:
		return "unstructured"
	default:
		return fmt.Sprintf("modality(%d)", int(m))
	}
}

// ErrEmptyLake indicates an operation over a lake with no items.
var ErrEmptyLake = errors.New("lake: empty lake")

// Item is one lake object. Exactly one of the modality payloads is set.
type Item struct {
	ID       string
	Modality Modality
	// Entity is the gold entity this item describes — used only by
	// evaluation, never by linking or planning.
	Entity string
	Domain string

	// Structured payload: a row in Table.
	Table string
	Row   map[string]string
	// Semi-structured payload: flattened key paths.
	KV map[string]string
	// Unstructured payload.
	Text string
}

// Description renders the item's literal description — the AOP observation
// that "all data types possess literal descriptions in varying formats".
// This single string is what gets embedded for linking.
func (it Item) Description() string {
	switch it.Modality {
	case Structured:
		keys := sortedKeys(it.Row)
		var b strings.Builder
		fmt.Fprintf(&b, "table %s row:", it.Table)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s %s;", k, it.Row[k])
		}
		return b.String()
	case SemiStructured:
		keys := sortedKeys(it.KV)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s: %s\n", k, it.KV[k])
		}
		return b.String()
	default:
		return it.Text
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Lake is the collection plus its structured catalog.
type Lake struct {
	Items  []Item
	Tables relation.Catalog
	byID   map[string]int
}

// ItemByID returns the item with the given id.
func (l *Lake) ItemByID(id string) (Item, bool) {
	idx, ok := l.byID[id]
	if !ok {
		return Item{}, false
	}
	return l.Items[idx], true
}

// SanitizeColumn converts a relation name to a SQL-safe column name.
func SanitizeColumn(rel string) string {
	return strings.ReplaceAll(strings.ToLower(rel), " ", "_")
}

// surfaceVariant renders a value in a different inflected surface form
// (shared stem, different ending) — distinct as a token, close in
// subword space.
func surfaceVariant(v string) string {
	return v + "um"
}

// BuildFromCorpus constructs a lake where every corpus entity appears in
// all three modalities: a row in its domain's table, a key-value document,
// and a text document. The shared underlying facts are what make
// cross-modality linking well defined.
func BuildFromCorpus(c *corpus.Corpus) (*Lake, error) {
	if len(c.Facts) == 0 {
		return nil, fmt.Errorf("lake: corpus has no facts")
	}
	// Group facts: domain -> subject -> relation -> object.
	type entityKey struct{ domain, subject string }
	attrs := make(map[entityKey]map[string]string)
	domainRels := make(map[string]map[string]bool)
	var order []entityKey
	for _, f := range c.Facts {
		k := entityKey{f.Domain, f.Subject}
		if attrs[k] == nil {
			attrs[k] = make(map[string]string)
			order = append(order, k)
		}
		attrs[k][SanitizeColumn(f.Relation)] = f.Object
		if domainRels[f.Domain] == nil {
			domainRels[f.Domain] = make(map[string]bool)
		}
		domainRels[f.Domain][SanitizeColumn(f.Relation)] = true
	}

	l := &Lake{Tables: relation.Catalog{}, byID: make(map[string]int)}

	// One table per domain: subject column plus a column per relation.
	domainCols := make(map[string][]string)
	for domain, rels := range domainRels {
		cols := make([]string, 0, len(rels))
		for r := range rels {
			cols = append(cols, r)
		}
		sort.Strings(cols)
		domainCols[domain] = cols
		schema := relation.Schema{{Name: "subject", Type: relation.String}}
		for _, r := range cols {
			schema = append(schema, relation.Column{Name: r, Type: relation.String})
		}
		t, err := relation.NewTable(domain, schema)
		if err != nil {
			return nil, fmt.Errorf("lake: table %s: %w", domain, err)
		}
		l.Tables[domain] = t
	}

	add := func(it Item) {
		l.byID[it.ID] = len(l.Items)
		l.Items = append(l.Items, it)
	}

	for i, k := range order {
		ea := attrs[k]
		// Structured: table row.
		row := relation.Row{k.subject}
		rowMap := map[string]string{"subject": k.subject}
		for _, col := range domainCols[k.domain] {
			if v, ok := ea[col]; ok {
				row = append(row, v)
				rowMap[col] = v
			} else {
				row = append(row, nil)
			}
		}
		if err := l.Tables[k.domain].Insert(row); err != nil {
			return nil, fmt.Errorf("lake: insert %s: %w", k.subject, err)
		}
		add(Item{
			ID: fmt.Sprintf("s-%04d", i), Modality: Structured,
			Entity: k.subject, Domain: k.domain, Table: k.domain, Row: rowMap,
		})

		// Semi-structured: key paths. Values carry a morphological surface
		// variant (a different inflection of the same underlying string):
		// real lakes rarely spell an entity's attributes identically
		// across sources, which is exactly why AOP links through a
		// semantic embedding space instead of exact token overlap.
		kv := map[string]string{
			// Identifier-style subject ("ZorvexFi"), as JSON sources
			// typically key entities — not the natural-language name.
			"record.subject": strings.ReplaceAll(k.subject, " ", ""),
			"record.domain":  k.domain,
		}
		for col, v := range ea {
			kv["record.attrs."+col] = surfaceVariant(v)
		}
		add(Item{
			ID: fmt.Sprintf("j-%04d", i), Modality: SemiStructured,
			Entity: k.subject, Domain: k.domain, KV: kv,
		})

		// Unstructured: fact sentences.
		var sentences []string
		for _, col := range sortedKeys(ea) {
			rel := strings.ReplaceAll(col, "_", " ")
			sentences = append(sentences, corpus.Fact{Subject: k.subject, Relation: rel, Object: ea[col]}.Sentence())
		}
		add(Item{
			ID: fmt.Sprintf("u-%04d", i), Modality: Unstructured,
			Entity: k.subject, Domain: k.domain, Text: strings.Join(sentences, " "),
		})
	}
	return l, nil
}
