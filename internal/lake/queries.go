package lake

import (
	"fmt"
	"math/rand"
	"sort"

	"dataai/internal/corpus"
)

// Query is one lake analytics question with its gold answer.
type Query struct {
	Text string
	Gold string
	Kind QueryKind
}

// GenerateQueries builds the E5 evaluation set: lookups and two-hop
// questions reuse the corpus QA pairs (their facts exist in the lake by
// construction), and counting questions are derived from the structured
// tables with gold counts computed directly.
func GenerateQueries(l *Lake, c *corpus.Corpus, countQueries int, seed int64) []Query {
	var out []Query
	for _, qa := range c.QAs {
		kind := KindLookup
		if qa.Hops == 2 {
			kind = KindTwoHop
		}
		out = append(out, Query{Text: qa.Question, Gold: qa.Answer, Kind: kind})
	}

	rng := rand.New(rand.NewSource(seed))
	domains := make([]string, 0, len(l.Tables))
	for d := range l.Tables {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for i := 0; i < countQueries && len(domains) > 0; i++ {
		domain := domains[rng.Intn(len(domains))]
		t := l.Tables[domain]
		if t.Len() == 0 || len(t.Schema) < 2 {
			continue
		}
		// Pick a non-subject column and a non-null value from it.
		col := t.Schema[1+rng.Intn(len(t.Schema)-1)].Name
		idx, err := t.Schema.Index(col)
		if err != nil {
			continue
		}
		var values []string
		for _, r := range t.Rows {
			if s, ok := r[idx].(string); ok {
				values = append(values, s)
			}
		}
		if len(values) == 0 {
			continue
		}
		v := values[rng.Intn(len(values))]
		gold := 0
		for _, r := range t.Rows {
			if s, ok := r[idx].(string); ok && s == v {
				gold++
			}
		}
		out = append(out, Query{
			Text: fmt.Sprintf("How many %s entities have %s %s?", domain, displayRel(col), v),
			Gold: fmt.Sprintf("%d", gold),
			Kind: KindCount,
		})
	}
	return out
}

// displayRel converts a sanitized column name back to its NL form.
func displayRel(col string) string {
	out := make([]byte, len(col))
	for i := 0; i < len(col); i++ {
		if col[i] == '_' {
			out[i] = ' '
		} else {
			out[i] = col[i]
		}
	}
	return string(out)
}
