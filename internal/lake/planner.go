package lake

import (
	"fmt"
	"regexp"
	"strings"

	"dataai/internal/agent"
	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/llm"
	"dataai/internal/rag"
	"dataai/internal/vecdb"
)

// QueryKind classifies a lake query into a plan template.
type QueryKind string

// Plan templates the planner can instantiate.
const (
	KindLookup QueryKind = "lookup"
	KindTwoHop QueryKind = "twohop"
	KindCount  QueryKind = "count"
)

// Planner compiles natural-language lake queries into tool pipelines and
// executes them — the SYMPHONY/CAESURA pattern: "decompose queries into
// sequences of sub-queries" and "integrate tools to support multi-modal
// data processing".
type Planner struct {
	client llm.Client
	lake   *Lake
	agent  *agent.Agent
	rag    *rag.Pipeline
}

// NewPlanner wires the tool set over the lake: a retriever across item
// descriptions, an answerer, an iterative RAG tool for multi-hop
// questions, and an NL2SQL + SQL pair over the structured tables.
func NewPlanner(client llm.Client, l *Lake, e embed.Embedder) (*Planner, error) {
	if len(l.Items) == 0 {
		return nil, ErrEmptyLake
	}
	p := &Planner{client: client, lake: l}

	// RAG pipeline over the non-structured items (structured rows are
	// reachable via SQL instead).
	rp, err := rag.New(client, e, vecdb.NewFlat(e.Dim()), rag.WithTopK(4))
	if err != nil {
		return nil, fmt.Errorf("lake: planner rag: %w", err)
	}
	var docs []docstore.Document
	for _, it := range l.Items {
		if it.Modality == Structured {
			continue
		}
		docs = append(docs, docstore.Document{ID: it.ID, Text: it.Description()})
	}
	if err := rp.Ingest(docs); err != nil {
		return nil, fmt.Errorf("lake: planner ingest: %w", err)
	}
	p.rag = rp

	tools := []agent.Tool{
		agent.ToolFunc{
			ToolName: "retrieve",
			Desc:     "vector search over lake item descriptions; returns top passages",
			Fn: func(in string) (string, error) {
				hits, err := rp.Retrieve(in, 4)
				if err != nil {
					return "", err
				}
				var b strings.Builder
				for _, h := range hits {
					b.WriteString(h.Chunk.Text)
					b.WriteByte('\n')
				}
				return strings.TrimRight(b.String(), "\n"), nil
			},
		},
		agent.ToolFunc{
			ToolName: "answer",
			Desc:     "answer a question from context; input: question line, then context lines",
			Fn: func(in string) (string, error) {
				lines := strings.Split(in, "\n")
				question := lines[0]
				resp, err := client.Complete(llm.Request{Prompt: llm.AnswerPrompt(question, lines[1:])})
				if err != nil {
					return "", err
				}
				return resp.Text, nil
			},
		},
		agent.ToolFunc{
			ToolName: "iterative_rag",
			Desc:     "multi-hop retrieval and answer for bridge questions",
			Fn: func(in string) (string, error) {
				a, err := rp.AnswerIterative(in)
				if err != nil {
					return "", err
				}
				return a.Text, nil
			},
		},
		agent.ToolFunc{
			ToolName: "nl2sql",
			Desc:     "translate a counting question into SQL over the lake tables",
			Fn:       p.nl2sql,
		},
		agent.ToolFunc{
			ToolName: "sql",
			Desc:     "execute SQL over the structured lake tables",
			Fn: func(in string) (string, error) {
				t, err := l.Tables.Query(in)
				if err != nil {
					return "", err
				}
				if t.Len() == 1 && len(t.Schema) == 1 {
					return fmt.Sprintf("%v", t.Rows[0][0]), nil
				}
				var b strings.Builder
				for _, r := range t.Rows {
					for i, v := range r {
						if i > 0 {
							b.WriteString(", ")
						}
						fmt.Fprintf(&b, "%v", v)
					}
					b.WriteByte('\n')
				}
				return strings.TrimRight(b.String(), "\n"), nil
			},
		},
	}
	ag, err := agent.New(tools, agent.WithMaxRetries(1))
	if err != nil {
		return nil, err
	}
	p.agent = ag
	return p, nil
}

var countQueryRe = regexp.MustCompile(`(?i)^how many (\w+) entities have (.+) ([a-z]+)\?$`)

// nl2sql translates the counting-question template into SQL. Real systems
// delegate this to the LLM; the translation rules here mirror what a
// constrained NL2SQL prompt produces, and the surrounding plan still pays
// the model's classification error rate.
func (p *Planner) nl2sql(q string) (string, error) {
	m := countQueryRe.FindStringSubmatch(q)
	if m == nil {
		return "", fmt.Errorf("lake: nl2sql cannot parse %q", q)
	}
	domain, rel, value := strings.ToLower(m[1]), SanitizeColumn(m[2]), m[3]
	if _, ok := p.lake.Tables[domain]; !ok {
		return "", fmt.Errorf("lake: nl2sql: unknown domain %q", domain)
	}
	return fmt.Sprintf("SELECT count(*) FROM %s WHERE %s = '%s'", domain, rel, value), nil
}

// Classify picks the plan template for a query. It consults the LLM with
// judge calls (inheriting the model's error rate) rather than pattern-
// matching directly — the planner, not the string, decides.
func (p *Planner) Classify(query string) (QueryKind, error) {
	isCount, err := p.judge("contains:how many", query)
	if err != nil {
		return "", err
	}
	if isCount {
		return KindCount, nil
	}
	isTwoHop, err := p.judge("contains:entity whose", query)
	if err != nil {
		return "", err
	}
	if isTwoHop {
		return KindTwoHop, nil
	}
	return KindLookup, nil
}

func (p *Planner) judge(criterion, text string) (bool, error) {
	resp, err := p.client.Complete(llm.Request{Prompt: llm.JudgePrompt(criterion, text)})
	if err != nil {
		return false, err
	}
	return llm.IsYes(resp.Text), nil
}

// Plan instantiates the template for the query's kind.
func (p *Planner) Plan(query string) (QueryKind, []agent.Action, error) {
	kind, err := p.Classify(query)
	if err != nil {
		return kind, nil, err
	}
	switch kind {
	case KindCount:
		return kind, []agent.Action{
			{Tool: "nl2sql", Input: "$q"},
			{Tool: "sql", Input: "$prev"},
		}, nil
	case KindTwoHop:
		return kind, []agent.Action{{Tool: "iterative_rag", Input: "$q"}}, nil
	default:
		return kind, []agent.Action{
			{Tool: "retrieve", Input: "$q"},
			{Tool: "answer", Input: "$q\n$prev"},
		}, nil
	}
}

// Answer plans and executes the query, returning the answer and trace.
func (p *Planner) Answer(query string) (string, agent.Trace, error) {
	_, plan, err := p.Plan(query)
	if err != nil {
		return "", agent.Trace{Failed: true}, err
	}
	tr, err := p.agent.Run(query, plan)
	if err != nil {
		return "", tr, err
	}
	return tr.Answer, tr, nil
}

// SingleShot is the baseline: ask the model directly, no tools.
func (p *Planner) SingleShot(query string) (string, error) {
	resp, err := p.client.Complete(llm.Request{Prompt: llm.AnswerPrompt(query, nil)})
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}
