package embed

import "dataai/internal/par"

// EmbedBatch embeds texts across up to workers goroutines, committing
// vectors in input order: out[i] is exactly e.Embed(texts[i]). Embedder
// implementations are documented deterministic and HashEmbedder holds no
// mutable state, so the worker count never changes any vector — only
// how the same work is scheduled. workers <= 0 means GOMAXPROCS.
//
// This is the ingestion hot path: RAG pipelines and the data-lake
// linker embed whole corpora before a single query runs, and each
// Embed is independent of every other.
func EmbedBatch(e Embedder, texts []string, workers int) [][]float32 {
	return par.Map(len(texts), workers, func(i int) []float32 {
		return e.Embed(texts[i])
	})
}
