package embed

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func batchCorpus(n int) []string {
	texts := make([]string, n)
	for i := range texts {
		texts[i] = fmt.Sprintf(
			"document %d describes the quarterly merger of company%d with partner%d announced by officer%d",
			i, i%17, i%23, i%7)
	}
	return texts
}

// TestEmbedBatchMatchesSerial: batched embedding is bit-for-bit the
// serial loop at every worker count.
func TestEmbedBatchMatchesSerial(t *testing.T) {
	e := NewHashEmbedder(64)
	texts := batchCorpus(120)
	want := make([][]float32, len(texts))
	for i, s := range texts {
		want[i] = e.Embed(s)
	}
	for _, workers := range []int{1, 2, 4, 8, 0} {
		got := EmbedBatch(e, texts, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: EmbedBatch differs from serial Embed loop", workers)
		}
	}
}

func TestEmbedBatchEmpty(t *testing.T) {
	e := NewHashEmbedder(16)
	if got := EmbedBatch(e, nil, 4); got != nil {
		t.Fatalf("EmbedBatch(nil) = %v, want nil", got)
	}
}

// TestEmbedBatchRaceStress runs concurrent batches on one shared
// embedder — HashEmbedder documents itself safe for concurrent use, and
// this makes `go test -race` prove it on the batch path.
func TestEmbedBatchRaceStress(t *testing.T) {
	t.Parallel()
	e := NewHashEmbedder(32)
	texts := batchCorpus(40)
	want := EmbedBatch(e, texts, 1)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				if got := EmbedBatch(e, texts, 4); !reflect.DeepEqual(got, want) {
					t.Error("concurrent EmbedBatch produced different vectors")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkParEmbedBatch: serial vs parallel embedding throughput at
// 1/2/4/8 workers (`go test -bench=Par -benchtime=1x ./...`).
func BenchmarkParEmbedBatch(b *testing.B) {
	e := NewHashEmbedder(DefaultDim)
	texts := batchCorpus(256)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if out := EmbedBatch(e, texts, workers); len(out) != len(texts) {
					b.Fatal("short batch")
				}
			}
		})
	}
}

// TestEmbedCallToCallStable pins the determinism fix: bucket
// accumulation happens in first-occurrence token order, so repeated
// Embed calls agree bit-for-bit (randomized map iteration used to
// reorder float32 additions and wobble the last ulp).
func TestEmbedCallToCallStable(t *testing.T) {
	e := NewHashEmbedder(64)
	text := batchCorpus(4)[3]
	a := e.Embed(text)
	for i := 0; i < 50; i++ {
		if b := e.Embed(text); !reflect.DeepEqual(a, b) {
			t.Fatalf("iteration %d: Embed not call-to-call stable", i)
		}
	}
}
