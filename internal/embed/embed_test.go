package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedDeterministic(t *testing.T) {
	e := NewHashEmbedder(64)
	a := e.Embed("the quick brown fox")
	b := e.Embed("the quick brown fox")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	e := NewHashEmbedder(128)
	v := e.Embed("some reasonably long text with many words in it")
	var ss float64
	for _, x := range v {
		ss += float64(x) * float64(x)
	}
	if math.Abs(ss-1) > 1e-5 {
		t.Errorf("norm^2 = %v, want 1", ss)
	}
}

func TestEmbedEmptyIsZero(t *testing.T) {
	e := NewHashEmbedder(32)
	for _, in := range []string{"", "   ", "\t\n"} {
		v := e.Embed(in)
		for _, x := range v {
			if x != 0 {
				t.Fatalf("Embed(%q) not zero", in)
			}
		}
	}
}

func TestSimilarTextsCloserThanUnrelated(t *testing.T) {
	e := NewHashEmbedder(DefaultDim)
	a := e.Embed("the revenue of acme corporation grew twenty percent in march")
	b := e.Embed("acme corporation revenue grew rapidly during march")
	c := e.Embed("penguins huddle together through antarctic winter storms")
	simAB := Cosine(a, b)
	simAC := Cosine(a, c)
	if simAB <= simAC {
		t.Errorf("related pair %v not closer than unrelated %v", simAB, simAC)
	}
	if simAB < 0.3 {
		t.Errorf("related pair similarity too low: %v", simAB)
	}
}

func TestSeedChangesEmbedding(t *testing.T) {
	a := NewHashEmbedder(64, WithSeed(1)).Embed("hello world")
	b := NewHashEmbedder(64, WithSeed(2)).Embed("hello world")
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical embeddings")
	}
}

func TestWithoutBigrams(t *testing.T) {
	uni := NewHashEmbedder(64, WithoutBigrams())
	// Bag of words: word order must not matter without bigrams.
	a := uni.Embed("alpha beta gamma")
	b := uni.Embed("gamma alpha beta")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("unigram-only embedding should be order invariant")
		}
	}
	bi := NewHashEmbedder(64)
	c := bi.Embed("alpha beta gamma")
	d := bi.Embed("gamma alpha beta")
	diff := false
	for i := range c {
		if c[i] != d[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("bigram embedding should be order sensitive")
	}
}

func TestCosineBounds(t *testing.T) {
	e := NewHashEmbedder(DefaultDim)
	f := func(s1, s2 string) bool {
		c := Cosine(e.Embed(s1), e.Embed(s2))
		return c >= -1.0001 && c <= 1.0001 && !math.IsNaN(float64(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosineSelfIsOne(t *testing.T) {
	e := NewHashEmbedder(DefaultDim)
	v := e.Embed("self similarity should be one")
	if c := Cosine(v, v); math.Abs(float64(c)-1) > 1e-5 {
		t.Errorf("self cosine = %v", c)
	}
}

func TestDotEqualsCosineForUnitVectors(t *testing.T) {
	e := NewHashEmbedder(DefaultDim)
	a := e.Embed("first piece of text here")
	b := e.Embed("second chunk of words there")
	if d, c := Dot(a, b), Cosine(a, b); math.Abs(float64(d-c)) > 1e-4 {
		t.Errorf("dot %v != cosine %v for unit vectors", d, c)
	}
}

func TestEuclideanSq(t *testing.T) {
	a := []float32{1, 0, 0}
	b := []float32{0, 1, 0}
	if d := EuclideanSq(a, b); math.Abs(float64(d)-2) > 1e-6 {
		t.Errorf("EuclideanSq = %v, want 2", d)
	}
	if d := EuclideanSq(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestMean(t *testing.T) {
	vecs := [][]float32{{1, 2}, {3, 4}}
	m := Mean(vecs)
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("Mean = %v", m)
	}
	if Mean(nil) != nil {
		t.Error("Mean(nil) should be nil")
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestNewHashEmbedderPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for dim 0")
		}
	}()
	NewHashEmbedder(0)
}

func TestNormalizeZeroVector(t *testing.T) {
	v := []float32{0, 0, 0}
	Normalize(v) // must not NaN
	for _, x := range v {
		if x != 0 {
			t.Error("zero vector changed")
		}
	}
}

func BenchmarkEmbed(b *testing.B) {
	e := NewHashEmbedder(DefaultDim)
	text := "retrieval augmented generation feeds relevant context into the language model to avoid hallucination"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Embed(text)
	}
}

func BenchmarkCosine(b *testing.B) {
	e := NewHashEmbedder(DefaultDim)
	x := e.Embed("first vector text")
	y := e.Embed("second vector text")
	for i := 0; i < b.N; i++ {
		Cosine(x, y)
	}
}
