// Package embed produces deterministic dense vector embeddings for text.
//
// The paper's LLM4Data techniques (RAG §2.2.2, AOP schema linking over data
// lakes) rely on an embedding model that maps semantically related text to
// nearby vectors. Real deployments call a neural encoder; this repository
// substitutes a seeded feature-hashing embedder: each token (and each token
// bigram) is hashed into d signed buckets, the bucket vector is then
// L2-normalized. Texts sharing vocabulary — which in our synthetic corpora
// is exactly what "semantically related" means, since related documents are
// generated from shared entity/fact templates — land close in cosine space,
// while unrelated texts are near-orthogonal in expectation. That preserves
// the behaviour the experiments need: similarity search returns the
// documents generated from the same underlying facts.
package embed

import (
	"fmt"
	"math"
	"unicode"

	"dataai/internal/token"
)

// DefaultDim is the embedding dimensionality used across the repository.
// 256 keeps flat search cheap while leaving hash collisions rare for the
// vocabulary sizes the synthetic corpora produce.
const DefaultDim = 256

// Embedder converts text into fixed-dimension vectors. Implementations
// must be deterministic: the same text always yields the same vector.
type Embedder interface {
	// Embed returns the vector for text. The returned slice is owned by
	// the caller.
	Embed(text string) []float32
	// Dim reports the dimensionality of produced vectors.
	Dim() int
}

// HashEmbedder is the feature-hashing Embedder described in the package
// comment. The zero value is not usable; construct with NewHashEmbedder.
// It is safe for concurrent use (it holds no mutable state).
type HashEmbedder struct {
	dim     int
	seed    uint64
	bigrams bool
}

// Option configures a HashEmbedder.
type Option func(*HashEmbedder)

// WithSeed sets the hash seed, giving an independent embedding family.
func WithSeed(seed uint64) Option { return func(e *HashEmbedder) { e.seed = seed } }

// WithoutBigrams disables bigram features, making the embedding a pure
// bag-of-words encoding.
func WithoutBigrams() Option { return func(e *HashEmbedder) { e.bigrams = false } }

// NewHashEmbedder returns a HashEmbedder producing dim-dimensional vectors.
// It panics if dim <= 0 (a programming error, not a runtime condition).
func NewHashEmbedder(dim int, opts ...Option) *HashEmbedder {
	if dim <= 0 {
		panic(fmt.Sprintf("embed: invalid dimension %d", dim))
	}
	e := &HashEmbedder{dim: dim, seed: 0x5eed, bigrams: true}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Dim implements Embedder.
func (e *HashEmbedder) Dim() int { return e.dim }

// stopWeight downweights function words and punctuation the way a trained
// encoder's attention does implicitly: without it, template tokens ("the",
// "of", "is") dominate similarity and retrieval confuses documents that
// share phrasing but not content.
const stopWeight = 0.1

var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "is": true, "are": true,
	"was": true, "in": true, "on": true, "at": true, "to": true, "and": true,
	"or": true, "what": true, "which": true, "who": true, "whose": true,
	"entity": true, "it": true, "its": true, "this": true, "that": true,
	"for": true, "with": true, "by": true, "from": true, "as": true,
}

func tokenWeight(t string) float32 {
	if stopwords[t] {
		return stopWeight
	}
	if r := []rune(t); len(r) > 0 && !unicode.IsLetter(r[0]) && !unicode.IsDigit(r[0]) {
		return stopWeight // punctuation
	}
	return 1
}

// subwordWeight scales character-trigram features. Subword features give
// the embedder what trained encoders get from BPE: surface variants of
// the same string ("anor" vs "an-or", truncations, re-hyphenations) stay
// close even when their token identities differ — the "semantic matching
// between different representations of the same entity" the paper's
// open-world motivation (§2.1) describes.
const subwordWeight = 0.3

// Embed implements Embedder. Empty or all-space text yields the zero
// vector, which has zero cosine similarity with everything.
//
// Term weighting is sublinear in frequency (1+ln tf per distinct token):
// without it, boilerplate tokens repeated on every line of a structured
// rendering (key paths, field labels) drown out the few tokens that
// identify the content.
func (e *HashEmbedder) Embed(text string) []float32 {
	v := make([]float32, e.dim)
	toks := token.Tokenize(text)
	// Visit distinct tokens in first-occurrence order, not map order:
	// bucket accumulation is float32 addition, and hash collisions put
	// several features in one bucket, so accumulation order must be
	// fixed for Embed to be bit-for-bit stable call to call. (Randomized
	// map iteration here was a latent determinism bug: rendered
	// experiment tables absorbed the last-ulp noise, but any near-tie
	// downstream could have flipped between runs.) Each processed token
	// is deleted from freq, so the map doubles as the seen-set.
	freq := token.Frequencies(toks)
	for _, t := range toks {
		tf, ok := freq[t]
		if !ok {
			continue // not the first occurrence
		}
		delete(freq, t)
		w := tokenWeight(t) * float32(1+math.Log(float64(tf)))
		e.add(v, t, w)
		if !stopwords[t] && len(t) >= 4 {
			// Hash character trigrams through a fixed stack buffer
			// ("##" prefix + 3 bytes) instead of building a string per
			// trigram — the dominant allocation on this hot path.
			// Hash64SeedBytes produces the identical hash, so vectors
			// are bit-for-bit unchanged.
			var buf [5]byte
			buf[0], buf[1] = '#', '#'
			for j := 0; j+3 <= len(t); j++ {
				buf[2], buf[3], buf[4] = t[j], t[j+1], t[j+2]
				e.addHash(v, token.Hash64SeedBytes(buf[:], e.seed), subwordWeight*w)
			}
		}
	}
	if e.bigrams {
		for i, h := range token.HashNGrams(toks, 2) {
			// Bigram weight is the min of its two token weights,
			// computed on the fly: tokenWeight is two map lookups,
			// cheaper than materializing a per-token scratch slice.
			w := tokenWeight(toks[i])
			if w2 := tokenWeight(toks[i+1]); w2 < w {
				w = w2
			}
			e.addHash(v, h, 0.5*w)
		}
	}
	Normalize(v)
	return v
}

func (e *HashEmbedder) add(v []float32, feature string, w float32) {
	e.addHash(v, token.Hash64Seed(feature, e.seed), w)
}

func (e *HashEmbedder) addHash(v []float32, h uint64, w float32) {
	// Mix in the seed so independent embedders decorrelate on shared
	// n-gram hashes too.
	h ^= e.seed * 0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	idx := int(h % uint64(e.dim))
	sign := float32(1)
	if (h>>63)&1 == 1 {
		sign = -1
	}
	v[idx] += sign * w
}

// Normalize scales v to unit L2 norm in place. The zero vector is left
// unchanged.
func Normalize(v []float32) {
	var ss float64
	for _, x := range v {
		ss += float64(x) * float64(x)
	}
	if ss == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(ss))
	for i := range v {
		v[i] *= inv
	}
}

// Dot returns the inner product of a and b. It panics on length mismatch
// (a programming error: vectors from different embedders were mixed).
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("embed: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Cosine returns the cosine similarity of a and b, in [-1, 1]. Zero
// vectors have similarity 0 with everything.
func Cosine(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("embed: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float32(dot / math.Sqrt(na*nb))
}

// EuclideanSq returns the squared Euclidean distance between a and b.
func EuclideanSq(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("embed: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Mean returns the element-wise mean of vecs. It returns nil for an empty
// input and panics on dimension mismatch among inputs.
func Mean(vecs [][]float32) []float32 {
	if len(vecs) == 0 {
		return nil
	}
	dim := len(vecs[0])
	out := make([]float32, dim)
	for _, v := range vecs {
		if len(v) != dim {
			panic(fmt.Sprintf("embed: dimension mismatch %d vs %d", len(v), dim))
		}
		for i, x := range v {
			out[i] += x
		}
	}
	inv := float32(1) / float32(len(vecs))
	for i := range out {
		out[i] *= inv
	}
	return out
}
