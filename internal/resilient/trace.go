package resilient

import "dataai/internal/obs"

// Observability for the LLM call path. The middleware has no event
// engine, so its logical clock is accumulated simulated latency: each
// traced call starts at the client's running clock and advances it by
// the latency the call charged. Under serial use (how experiments drive
// clients) the timeline is deterministic; concurrent callers share the
// clock, so their spans may overlap on the "llm" track — which CatLLM
// explicitly allows and the invariant checker does not flag.

// SetObs attaches a tracer to the middleware: every Complete call
// records a root "call" span on the "llm" track with attempt / backoff /
// breaker-fastfail / fallback children, plus resilient/* counters in the
// registry. Call before issuing requests; a nil tracer (or never calling
// SetObs) leaves the client untraced and cost-free.
func (c *Client) SetObs(tr *obs.Tracer) { c.trace = tr }

// callTrace threads one Complete invocation's span state through the
// retry ladder. A nil *callTrace (tracing off) no-ops every method.
type callTrace struct {
	tr   *obs.Tracer
	root obs.SpanRef
	cur  float64
}

// traceCall opens the root span at the client's current logical clock.
func (c *Client) traceCall() *callTrace {
	if c.trace == nil {
		return nil
	}
	c.mu.Lock()
	t0 := c.clockMS
	c.mu.Unlock()
	return &callTrace{tr: c.trace, root: c.trace.Begin(t0, "llm", obs.CatLLM, "call", 0), cur: t0}
}

// child records a phase of durMS under the call root and advances the
// call cursor.
func (ct *callTrace) child(name string, durMS float64) {
	if ct == nil {
		return
	}
	if durMS < 0 {
		durMS = 0
	}
	ref := ct.tr.Begin(ct.cur, "llm", obs.CatLLM, name, ct.root)
	ct.cur += durMS
	ct.tr.End(ct.cur, ref)
}

// bump increments a registry counter at the call cursor.
func (ct *callTrace) bump(name string) {
	if ct == nil {
		return
	}
	ct.tr.Registry().Counter(name).Add(ct.cur, 1)
}

// traceDone closes the call root with its outcome and advances the
// client clock to the call's end.
func (c *Client) traceDone(ct *callTrace, outcome string) {
	if ct == nil {
		return
	}
	ct.tr.EndReason(ct.cur, ct.root, outcome)
	c.mu.Lock()
	if ct.cur > c.clockMS {
		c.clockMS = ct.cur
	}
	c.mu.Unlock()
}
