package resilient

import (
	"errors"
	"reflect"
	"testing"

	"dataai/internal/llm"
	"dataai/internal/obs"
)

// spanNames returns the name of every child span under the i-th root
// "call" span, in recording order, plus that root.
func callSpans(t *testing.T, tr *obs.Tracer, i int) (root obs.Span, children []obs.Span) {
	t.Helper()
	var roots []obs.Span
	for _, s := range tr.Spans() {
		if s.Parent == 0 && s.Name == "call" {
			roots = append(roots, s)
		}
	}
	if i >= len(roots) {
		t.Fatalf("want call root %d, have %d", i, len(roots))
	}
	root = roots[i]
	for _, s := range tr.Spans() {
		if s.Parent == root.ID {
			children = append(children, s)
		}
	}
	return root, children
}

func TestTracedRetrySpans(t *testing.T) {
	inner := newScript(okResp)
	inner.failures["q"] = []error{llm.ErrTransient, llm.ErrTransient}
	c := Wrap(inner, RetryOnly(3, 1))
	tr := obs.NewTracer()
	c.SetObs(tr)

	r, err := c.Complete(llm.Request{Prompt: "q"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("trace failed invariants: %v", err)
	}
	root, children := callSpans(t, tr, 0)
	if root.Reason != "ok" {
		t.Errorf("root reason = %q, want ok", root.Reason)
	}
	// The call's span covers exactly the latency charged to the caller:
	// attempt + backoff + attempt + backoff + attempt.
	if got := root.EndMS - root.StartMS; got != r.LatencyMS {
		t.Errorf("root span = %v ms, response charged %v ms", got, r.LatencyMS)
	}
	hist := map[string]int{}
	for _, s := range children {
		hist[s.Name]++
	}
	if hist["attempt"] != 3 || hist["backoff"] != 2 {
		t.Errorf("child histogram = %v, want 3 attempts / 2 backoffs", hist)
	}
	if got := tr.Registry().Lookup("resilient/retries").Final(); got != 2 {
		t.Errorf("resilient/retries = %v, want 2", got)
	}

	// A second call on the same client starts where the first ended —
	// the accumulated-latency clock is continuous.
	if _, err := c.Complete(llm.Request{Prompt: "r"}); err != nil {
		t.Fatal(err)
	}
	second, _ := callSpans(t, tr, 1)
	if second.StartMS != root.EndMS {
		t.Errorf("second call starts at %v, first ended at %v", second.StartMS, root.EndMS)
	}
}

func TestTracedDegradePaths(t *testing.T) {
	permanent := errors.New("permanent")

	t.Run("refusal", func(t *testing.T) {
		inner := newScript(okResp)
		inner.failures["q"] = []error{permanent}
		c := Wrap(inner, Policy{DegradeToRefusal: true})
		tr := obs.NewTracer()
		c.SetObs(tr)
		if _, err := c.Complete(llm.Request{Prompt: "q"}); err != nil {
			t.Fatal(err)
		}
		root, _ := callSpans(t, tr, 0)
		if root.Reason != "refusal" {
			t.Errorf("root reason = %q, want refusal", root.Reason)
		}
		if got := tr.Registry().Lookup("resilient/refusals").Final(); got != 1 {
			t.Errorf("resilient/refusals = %v, want 1", got)
		}
	})

	t.Run("fallback", func(t *testing.T) {
		inner := newScript(okResp)
		inner.failures["q"] = []error{permanent}
		c := Wrap(inner, Policy{Fallback: newScript(llm.Response{Text: "fb", LatencyMS: 40})})
		tr := obs.NewTracer()
		c.SetObs(tr)
		r, err := c.Complete(llm.Request{Prompt: "q"})
		if err != nil || r.Text != "fb" {
			t.Fatalf("fallback answer = %+v, %v", r, err)
		}
		root, children := callSpans(t, tr, 0)
		if root.Reason != "fallback" {
			t.Errorf("root reason = %q, want fallback", root.Reason)
		}
		hasFB := false
		for _, s := range children {
			if s.Name == "fallback" && s.EndMS-s.StartMS == 40 {
				hasFB = true
			}
		}
		if !hasFB {
			t.Errorf("no 40ms fallback child span in %v", children)
		}
		if got := tr.Registry().Lookup("resilient/fallbacks").Final(); got != 1 {
			t.Errorf("resilient/fallbacks = %v, want 1", got)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("trace failed invariants: %v", err)
		}
	})
}

func TestTracedBreakerFastFail(t *testing.T) {
	permanent := errors.New("permanent")
	inner := newScript(okResp)
	inner.failures["a"] = []error{permanent}
	c := Wrap(inner, Policy{Breaker: &BreakerPolicy{FailureThreshold: 1}})
	tr := obs.NewTracer()
	c.SetObs(tr)

	if _, err := c.Complete(llm.Request{Prompt: "a"}); err == nil {
		t.Fatal("want error from scripted failure")
	}
	// The breaker is now open: the next call must fast-fail without an
	// attempt span.
	if _, err := c.Complete(llm.Request{Prompt: "b"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	root, children := callSpans(t, tr, 1)
	if root.Reason != "error" {
		t.Errorf("fast-failed root reason = %q, want error", root.Reason)
	}
	if len(children) != 1 || children[0].Name != "breaker-fastfail" {
		t.Errorf("fast-failed call children = %v, want one breaker-fastfail", children)
	}
	if got := tr.Registry().Lookup("resilient/fastfails").Final(); got != 1 {
		t.Errorf("resilient/fastfails = %v, want 1", got)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("trace failed invariants: %v", err)
	}
}

func TestTracingDoesNotPerturbClient(t *testing.T) {
	run := func(tr *obs.Tracer) (llm.Response, Stats) {
		inner := newScript(okResp)
		inner.failures["q"] = []error{llm.ErrTimeout, llm.ErrTransient}
		c := Wrap(inner, Full(3, 7, newScript(llm.Response{Text: "fb"})))
		if tr != nil {
			c.SetObs(tr)
		}
		r, err := c.Complete(llm.Request{Prompt: "q"})
		if err != nil {
			t.Fatal(err)
		}
		return r, c.Stats()
	}
	plainResp, plainStats := run(nil)
	tracedResp, tracedStats := run(obs.NewTracer())
	if !reflect.DeepEqual(plainResp, tracedResp) {
		t.Errorf("tracing changed the response: %+v vs %+v", plainResp, tracedResp)
	}
	if !reflect.DeepEqual(plainStats, tracedStats) {
		t.Errorf("tracing changed the stats: %+v vs %+v", plainStats, tracedStats)
	}
}
