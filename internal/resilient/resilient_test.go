package resilient

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dataai/internal/llm"
)

// scriptClient fails according to a per-prompt script of errors, then
// succeeds, counting attempts.
type scriptClient struct {
	// failures maps prompt -> errors to return before succeeding.
	failures map[string][]error
	attempts map[string]int
	resp     llm.Response
}

func newScript(resp llm.Response) *scriptClient {
	return &scriptClient{failures: map[string][]error{}, attempts: map[string]int{}, resp: resp}
}

func (s *scriptClient) Complete(req llm.Request) (llm.Response, error) {
	n := s.attempts[req.Prompt]
	s.attempts[req.Prompt] = n + 1
	if fs := s.failures[req.Prompt]; n < len(fs) {
		// Timeouts charge simulated work, like the fault injector does.
		if errors.Is(fs[n], llm.ErrTimeout) {
			return llm.Response{PromptTokens: 5, LatencyMS: 250}, fs[n]
		}
		return llm.Response{}, fs[n]
	}
	r := s.resp
	return r, nil
}

var okResp = llm.Response{Text: "fine", CompletionTokens: 1, CostUSD: 0.01, LatencyMS: 10}

func TestRetryRecoversFromTransient(t *testing.T) {
	inner := newScript(okResp)
	inner.failures["q"] = []error{llm.ErrTransient, llm.ErrTransient}
	c := Wrap(inner, RetryOnly(3, 1))

	start := time.Now()
	r, err := c.Complete(llm.Request{Prompt: "q"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if r.Text != "fine" {
		t.Fatalf("text = %q", r.Text)
	}
	// Two retries' backoff is charged to the response latency...
	if r.LatencyMS <= okResp.LatencyMS {
		t.Fatalf("latency = %v, want > %v (backoff charged)", r.LatencyMS, okResp.LatencyMS)
	}
	// ...but never slept: >100ms of simulated backoff must cost near
	// zero wall time.
	if elapsed > 2*time.Second {
		t.Fatalf("Complete took %v wall time; backoff must be simulated, not slept", elapsed)
	}
	s := c.Stats()
	if s.Attempts != 3 || s.Retries != 2 || s.BackoffMS <= 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRetryBackoffDeterministic(t *testing.T) {
	run := func() float64 {
		inner := newScript(okResp)
		inner.failures["q"] = []error{llm.ErrTransient, llm.ErrTransient, llm.ErrTransient}
		c := Wrap(inner, RetryOnly(3, 42))
		r, err := c.Complete(llm.Request{Prompt: "q"})
		if err != nil {
			t.Fatal(err)
		}
		return r.LatencyMS
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("backoff nondeterministic: %v vs %v", a, b)
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	inner := newScript(okResp)
	inner.failures["q"] = []error{&llm.RateLimitError{RetryAfterMS: 77}}
	c := Wrap(inner, RetryOnly(3, 1))
	r, err := c.Complete(llm.Request{Prompt: "q"})
	if err != nil {
		t.Fatal(err)
	}
	if want := okResp.LatencyMS + 77; r.LatencyMS != want {
		t.Fatalf("latency = %v, want %v (retry-after hint, not exponential backoff)", r.LatencyMS, want)
	}
	if s := c.Stats(); s.RateLimitWaits != 1 {
		t.Fatalf("RateLimitWaits = %d, want 1", s.RateLimitWaits)
	}
}

func TestNonRetryableFailsFast(t *testing.T) {
	inner := newScript(okResp)
	inner.failures["q"] = []error{llm.ErrBadPrompt, llm.ErrBadPrompt}
	c := Wrap(inner, RetryOnly(3, 1))
	_, err := c.Complete(llm.Request{Prompt: "q"})
	if !errors.Is(err, llm.ErrBadPrompt) {
		t.Fatalf("err = %v, want ErrBadPrompt", err)
	}
	if s := c.Stats(); s.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry of non-retryable)", s.Attempts)
	}
}

func TestRetriesExhaustedReturnsWaste(t *testing.T) {
	inner := newScript(okResp)
	inner.failures["q"] = []error{llm.ErrTimeout, llm.ErrTimeout, llm.ErrTimeout, llm.ErrTimeout}
	c := Wrap(inner, RetryOnly(3, 1))
	r, err := c.Complete(llm.Request{Prompt: "q"})
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	if r.PromptTokens != 20 {
		t.Fatalf("wasted prompt tokens on error response = %d, want 20 (4 timeouts x 5)", r.PromptTokens)
	}
	s := c.Stats()
	if s.Failures != 1 || s.WastedPromptTokens != 20 || s.WastedLatencyMS < 4*250 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestHedgingAbsorbsTimeoutTail(t *testing.T) {
	inner := newScript(okResp)
	inner.failures["q"] = []error{llm.ErrTimeout}
	c := Wrap(inner, Policy{MaxRetries: 3, Seed: 1, HedgeAfterMS: 30})
	r, err := c.Complete(llm.Request{Prompt: "q"})
	if err != nil {
		t.Fatal(err)
	}
	// Timeout charged 250ms; the hedge charges its 30ms offset instead
	// of an exponential backoff wait.
	if want := 250 + 30 + okResp.LatencyMS; r.LatencyMS != want {
		t.Fatalf("latency = %v, want %v (timeout + hedge offset + success)", r.LatencyMS, want)
	}
	if s := c.Stats(); s.Hedges != 1 {
		t.Fatalf("Hedges = %d, want 1", s.Hedges)
	}
}

func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	inner := newScript(okResp)
	pol := Policy{
		Breaker: &BreakerPolicy{FailureThreshold: 2, CooldownMS: 5, HalfOpenProbes: 1, FastFailMS: 10},
	}
	c := Wrap(inner, pol)

	// Two consecutive failures trip the breaker.
	inner.failures["a"] = []error{llm.ErrTransient}
	inner.failures["b"] = []error{llm.ErrTransient}
	if _, err := c.Complete(llm.Request{Prompt: "a"}); err == nil {
		t.Fatal("want failure")
	}
	if _, err := c.Complete(llm.Request{Prompt: "b"}); err == nil {
		t.Fatal("want failure")
	}
	if st := c.BreakerState(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}

	// Open circuit fast-fails without touching the inner client, and
	// the fast-fail charge advances the simulated clock past cooldown.
	if _, err := c.Complete(llm.Request{Prompt: "c"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if got := inner.attempts["c"]; got != 0 {
		t.Fatalf("inner saw %d attempts while open, want 0", got)
	}

	// Cooldown elapsed on the simulated clock: next call is the
	// half-open probe; its success closes the circuit.
	if _, err := c.Complete(llm.Request{Prompt: "d"}); err != nil {
		t.Fatal(err)
	}
	if st := c.BreakerState(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed after successful probe", st)
	}
	s := c.Stats()
	if s.Breaker.Opened != 1 || s.Breaker.FastFails != 1 || s.Breaker.HalfOpens != 1 || s.Breaker.Closed != 1 {
		t.Fatalf("breaker stats = %+v", s.Breaker)
	}
}

func TestFallbackDegrades(t *testing.T) {
	inner := newScript(okResp)
	inner.failures["q"] = []error{llm.ErrTransient, llm.ErrTransient}
	fallback := newScript(llm.Response{Text: "from fallback", CostUSD: 0.001, LatencyMS: 3})
	c := Wrap(inner, Policy{MaxRetries: 1, Seed: 1, Fallback: fallback})
	r, err := c.Complete(llm.Request{Prompt: "q"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded || r.Text != "from fallback" {
		t.Fatalf("want degraded fallback answer, got %+v", r)
	}
	if s := c.Stats(); s.FallbackCalls != 1 {
		t.Fatalf("FallbackCalls = %d, want 1", s.FallbackCalls)
	}
}

func TestDegradeToRefusal(t *testing.T) {
	inner := newScript(okResp)
	inner.failures["q"] = []error{llm.ErrTransient, llm.ErrTransient}
	c := Wrap(inner, Policy{MaxRetries: 1, Seed: 1, DegradeToRefusal: true})
	r, err := c.Complete(llm.Request{Prompt: "q"})
	if err != nil {
		t.Fatalf("refusal degradation must not error, got %v", err)
	}
	if !r.Degraded || !llm.IsUnknown(r.Text) || r.Confidence != 0 {
		t.Fatalf("want degraded refusal, got %+v", r)
	}
	if s := c.Stats(); s.DegradedRefusals != 1 {
		t.Fatalf("DegradedRefusals = %d, want 1", s.DegradedRefusals)
	}
}

func TestZeroPolicyTransparent(t *testing.T) {
	inner := newScript(okResp)
	c := Wrap(inner, Policy{})
	r, err := c.Complete(llm.Request{Prompt: "q"})
	if err != nil || r != okResp {
		t.Fatalf("zero policy must pass through: %v / %+v", err, r)
	}
	inner.failures["bad"] = []error{llm.ErrTransient}
	if _, err := c.Complete(llm.Request{Prompt: "bad"}); err == nil {
		t.Fatal("zero policy must not retry or degrade")
	}
	if s := c.Stats(); s.Attempts != 2 || s.Retries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	// Backoff doubles from base and saturates at the cap; jitter keeps
	// every draw inside [b*(1-frac), b).
	const base, maxMS, frac = 50.0, 400.0, 0.5
	prev := 0.0
	for attempt := 1; attempt <= 8; attempt++ {
		b := backoffFor(base, maxMS, frac, "k", attempt, 9)
		ceil := base * float64(int(1)<<uint(attempt-1))
		if ceil > maxMS {
			ceil = maxMS
		}
		if b < ceil*(1-frac) || b >= ceil {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, b, ceil*(1-frac), ceil)
		}
		if attempt >= 5 && prev != 0 {
			// Saturated region: bounded by the cap.
			if b >= maxMS {
				t.Fatalf("attempt %d: backoff %v not capped at %v", attempt, b, maxMS)
			}
		}
		prev = b
	}
}

func TestRetrierSemantics(t *testing.T) {
	// Success after k failures reports retries == k.
	fails := 2
	retries, backoff, err := Retrier{MaxRetries: 3}.Do("k", func(attempt int) error {
		if attempt < fails {
			return fmt.Errorf("attempt %d fails", attempt)
		}
		return nil
	})
	if err != nil || retries != 2 || backoff != 0 {
		t.Fatalf("got retries=%d backoff=%v err=%v, want 2/0/nil", retries, backoff, err)
	}

	// Exhaustion reports retries == MaxRetries and the final error.
	retries, _, err = Retrier{MaxRetries: 2}.Do("k", func(int) error { return fmt.Errorf("always") })
	if err == nil || retries != 2 {
		t.Fatalf("got retries=%d err=%v, want 2/non-nil", retries, err)
	}

	// Backoff is charged only when configured, and deterministically.
	r := Retrier{MaxRetries: 3, BaseBackoffMS: 50, MaxBackoffMS: 400, JitterFrac: 0.5, Seed: 4}
	_, b1, _ := r.Do("k", func(attempt int) error {
		if attempt < 2 {
			return fmt.Errorf("fail")
		}
		return nil
	})
	_, b2, _ := r.Do("k", func(attempt int) error {
		if attempt < 2 {
			return fmt.Errorf("fail")
		}
		return nil
	})
	if b1 <= 0 || b1 != b2 {
		t.Fatalf("backoff %v / %v, want positive and deterministic", b1, b2)
	}
}
