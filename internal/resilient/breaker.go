package resilient

import "sync"

// BreakerPolicy configures the circuit breaker.
type BreakerPolicy struct {
	// FailureThreshold is how many consecutive primary-path failures
	// open the circuit (default 5 when zero).
	FailureThreshold int
	// CooldownMS is how long, on the simulated clock, the circuit
	// stays open before admitting half-open probes (default 1000).
	CooldownMS float64
	// HalfOpenProbes is how many consecutive probe successes close the
	// circuit again (default 1).
	HalfOpenProbes int
	// FastFailMS is the latency charged to a call rejected by the open
	// circuit — the cost of discovering the breaker state, which also
	// advances the simulated clock toward cooldown expiry (default 1).
	FastFailMS float64
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = 5
	}
	if p.CooldownMS <= 0 {
		p.CooldownMS = 1000
	}
	if p.HalfOpenProbes <= 0 {
		p.HalfOpenProbes = 1
	}
	if p.FastFailMS <= 0 {
		p.FastFailMS = 1
	}
	return p
}

// BreakerState names the circuit's position.
type BreakerState int

// The three classic circuit states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for tables and errors.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerStats counts state transitions and rejections.
type BreakerStats struct {
	Opened    int64
	HalfOpens int64
	Closed    int64
	FastFails int64
}

// breaker is the circuit state machine. It runs on the simulated clock
// its owner advances (charged latency, never wall time), so breaker
// behaviour is as reproducible as everything else in the repo.
type breaker struct {
	policy BreakerPolicy

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	probeWins   int
	openedAtMS  float64
	clockMS     float64
	stats       BreakerStats
}

func newBreaker(p BreakerPolicy) *breaker {
	return &breaker{policy: p.withDefaults()}
}

// advance moves the simulated clock forward by ms of charged latency.
func (b *breaker) advance(ms float64) {
	b.mu.Lock()
	b.clockMS += ms
	b.mu.Unlock()
}

// allow reports whether a call may proceed. A rejected call costs
// FastFailMS of simulated latency (returned for the caller to charge);
// the charge is applied to the clock here so repeated rejections walk
// the clock toward cooldown expiry instead of freezing time.
func (b *breaker) allow() (ok bool, fastFailMS float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if b.clockMS-b.openedAtMS >= b.policy.CooldownMS {
			b.state = BreakerHalfOpen
			b.probeWins = 0
			b.stats.HalfOpens++
			return true, 0
		}
		b.stats.FastFails++
		b.clockMS += b.policy.FastFailMS
		return false, b.policy.FastFailMS
	default: // half-open: probes are admitted, outcomes decide the state
		return true, 0
	}
}

// onSuccess records a successful primary-path call.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	if b.state == BreakerHalfOpen {
		b.probeWins++
		if b.probeWins >= b.policy.HalfOpenProbes {
			b.state = BreakerClosed
			b.stats.Closed++
		}
	}
}

// onFailure records a failed primary-path call (after its retries).
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAtMS = b.clockMS
		b.stats.Opened++
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.policy.FailureThreshold {
			b.state = BreakerOpen
			b.openedAtMS = b.clockMS
			b.stats.Opened++
		}
	}
}

// snapshot returns the state and transition counts.
func (b *breaker) snapshot() (BreakerState, BreakerStats) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.stats
}
