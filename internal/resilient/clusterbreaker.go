package resilient

// Breaker is an exported standalone circuit breaker driven by an
// absolute logical clock, for callers that already own a timeline — the
// serving cluster router feeds one per instance with crash detections
// and completions, and reads the state inside its routing score. It is
// the same Closed/Open/HalfOpen machine the Client middleware uses
// internally, but timestamps come from the caller's clock instead of
// accumulated charged latency.
//
// Unlike the middleware's internal breaker it is NOT safe for concurrent
// use: discrete-event simulations are single-threaded by construction,
// and a mutex would only hide misuse.
type Breaker struct {
	policy      BreakerPolicy
	state       BreakerState
	consecFails int
	probeWins   int
	openedAtMS  float64
	stats       BreakerStats
}

// NewBreaker returns a closed breaker with p's defaults applied.
func NewBreaker(p BreakerPolicy) *Breaker {
	return &Breaker{policy: p.withDefaults()}
}

// StateAt reports the circuit position at absolute time nowMS, applying
// the Open→HalfOpen transition once the cooldown has elapsed.
func (b *Breaker) StateAt(nowMS float64) BreakerState {
	if b.state == BreakerOpen && nowMS-b.openedAtMS >= b.policy.CooldownMS {
		b.state = BreakerHalfOpen
		b.probeWins = 0
		b.stats.HalfOpens++
	}
	return b.state
}

// OnSuccess records a successful call at nowMS: it resets the failure
// streak and, half-open, counts toward closing the circuit.
func (b *Breaker) OnSuccess(nowMS float64) {
	b.StateAt(nowMS)
	b.consecFails = 0
	if b.state == BreakerHalfOpen {
		b.probeWins++
		if b.probeWins >= b.policy.HalfOpenProbes {
			b.state = BreakerClosed
			b.stats.Closed++
		}
	}
}

// OnFailure records a failed call at nowMS. Half-open it reopens the
// circuit; closed it opens after FailureThreshold consecutive failures;
// open it extends the cooldown window from nowMS.
func (b *Breaker) OnFailure(nowMS float64) {
	b.StateAt(nowMS)
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAtMS = nowMS
		b.stats.Opened++
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.policy.FailureThreshold {
			b.state = BreakerOpen
			b.openedAtMS = nowMS
			b.stats.Opened++
		}
	default: // open: a further failure restarts the cooldown
		b.openedAtMS = nowMS
	}
}

// Stats returns the transition counters.
func (b *Breaker) Stats() BreakerStats { return b.stats }
