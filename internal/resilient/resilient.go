// Package resilient provides middleware over llm.Client that keeps
// pipelines working when the endpoint does not: retry with capped
// exponential backoff and seeded deterministic jitter, retry-after-aware
// rate-limit handling, a circuit breaker with half-open probes, optional
// hedged requests, and graceful degradation (fallback model, explicit
// Degraded refusals instead of failing a whole batch).
//
// Two invariants distinguish this from a production retry library:
//
//   - No wall-clock time is ever consumed. Backoff, retry-after waits,
//     hedge offsets, and breaker cooldowns all run on a simulated clock:
//     the wait is *charged* to the returned Response.LatencyMS (and to
//     the breaker's clock), never slept. Experiments measure the latency
//     a real deployment would pay without paying it themselves.
//
//   - Every stochastic choice (jitter) derives from a seeded hash of
//     (prompt, attempt, seed) — never math/rand's global state — so a
//     run is a pure function of its inputs, matching the repo's
//     byte-identical determinism contract.
//
// Everything the middleware spends is metered: attempts, retries,
// wasted tokens/cost/latency from failed attempts, hedges, fallback and
// refusal degradations, and breaker transitions, all visible through
// Stats() so experiment E22 can report waste alongside success rate.
//
// The breaker and the stats are shared mutable state. With a
// deterministic inner client the *responses* stay a pure function of
// each prompt, but breaker fast-fail decisions depend on the order
// concurrent calls observe the shared state; callers that need
// bit-identical parallel-vs-serial behaviour (semop's Workers path)
// should use breakerless policies or serial execution, as E22 does.
package resilient

import (
	"errors"
	"fmt"
	"sync"

	"dataai/internal/llm"
	"dataai/internal/obs"
	"dataai/internal/token"
)

// ErrCircuitOpen is returned (wrapped) when the circuit breaker rejects
// a call without consulting the inner client. It is deliberately not
// retryable: the point of the breaker is to stop retrying a dead
// endpoint; degradation policies still apply.
var ErrCircuitOpen = errors.New("resilient: circuit open")

// Policy configures the middleware. The zero value retries nothing and
// degrades nothing — Wrap with a zero Policy is a transparent pass-through.
type Policy struct {
	// MaxRetries is how many times a retryable failure is retried
	// after the first attempt.
	MaxRetries int
	// BaseBackoffMS is the first retry's backoff (default 50 when
	// retries are enabled); backoff doubles per attempt, capped at
	// MaxBackoffMS (default 2000).
	BaseBackoffMS float64
	MaxBackoffMS  float64
	// JitterFrac in [0,1] is the fraction of each backoff randomized
	// by the seeded jitter hash (default 0.5). Zero keeps full
	// deterministic backoff without jitter.
	JitterFrac float64
	// Seed drives the jitter hash.
	Seed uint64
	// HedgeAfterMS, when positive, models a hedged request racing the
	// primary from that offset: a timed-out attempt charges only
	// HedgeAfterMS of serial latency (the hedge overlapped the
	// timeout's tail) and retries immediately without backoff. The race
	// is not free: a primary that succeeds *after* the offset has
	// already triggered its hedge, and the cancelled duplicate's prompt
	// spend is charged as waste (Stats.HedgesLost/HedgeWastedTokens) —
	// lower offsets buy shorter tails with more duplicate work. The
	// duplicate is modelled analytically rather than issued to the inner
	// client, so fault draws and attempt counts are unperturbed.
	HedgeAfterMS float64
	// Breaker, when non-nil, trips after consecutive failures and
	// fast-fails calls until cooldown expires on the simulated clock.
	Breaker *BreakerPolicy
	// Fallback, when non-nil, answers calls whose primary path
	// exhausted its retries (graceful degradation to a cheaper or
	// healthier model). Fallback responses are marked Degraded.
	Fallback llm.Client
	// DegradeToRefusal converts a still-failing call into an explicit
	// Degraded refusal (llm.Unknown) instead of an error, so one bad
	// call cannot abort a whole batch.
	DegradeToRefusal bool
}

// RetryOnly returns a policy with retry/backoff only — the middle arm
// of E22.
func RetryOnly(maxRetries int, seed uint64) Policy {
	return Policy{MaxRetries: maxRetries, Seed: seed}
}

// Full returns the complete resilient stack: retries, hedging, breaker,
// fallback, and refusal degradation.
func Full(maxRetries int, seed uint64, fallback llm.Client) Policy {
	return Policy{
		MaxRetries:       maxRetries,
		Seed:             seed,
		HedgeAfterMS:     300,
		Breaker:          &BreakerPolicy{},
		Fallback:         fallback,
		DegradeToRefusal: true,
	}
}

func (p Policy) withDefaults() Policy {
	if p.MaxRetries > 0 {
		if p.BaseBackoffMS <= 0 {
			p.BaseBackoffMS = 50
		}
		if p.MaxBackoffMS <= 0 {
			p.MaxBackoffMS = 2000
		}
		// Zero means "default"; pass a negative JitterFrac for
		// explicit no-jitter backoff.
		if p.JitterFrac == 0 {
			p.JitterFrac = 0.5
		}
		if p.JitterFrac < 0 {
			p.JitterFrac = 0
		}
		if p.JitterFrac > 1 {
			p.JitterFrac = 1
		}
	}
	return p
}

// Stats is the middleware's consumption and decision tally.
type Stats struct {
	// Calls counts Complete invocations; Attempts counts inner-client
	// invocations (Attempts - Calls = retries + hedge re-issues).
	Calls    int64
	Attempts int64
	Retries  int64
	// RateLimitWaits counts retry-after hints honored; BackoffMS is
	// the total simulated wait charged (backoff + retry-after).
	RateLimitWaits int64
	BackoffMS      float64
	// Hedges counts timed-out attempts absorbed by the hedged request
	// (the hedge won the race). HedgesLost counts hedges that fired but
	// were cancelled when the primary succeeded first;
	// HedgeWastedTokens totals the duplicate prompt tokens those
	// cancelled hedges consumed (also folded into Wasted*).
	Hedges            int64
	HedgesLost        int64
	HedgeWastedTokens int64
	// Wasted* total what failed attempts consumed before the call
	// finally succeeded, degraded, or gave up.
	WastedPromptTokens     int64
	WastedCompletionTokens int64
	WastedCostUSD          float64
	WastedLatencyMS        float64
	// FallbackCalls and DegradedRefusals count the degradation paths.
	FallbackCalls    int64
	DegradedRefusals int64
	// Breaker reports the circuit's transition counts (zero without a
	// breaker policy).
	Breaker BreakerStats
	// Failures counts calls that still returned an error after every
	// policy was applied.
	Failures int64
}

// Client is the resilience middleware. Construct with Wrap; safe for
// concurrent use.
type Client struct {
	inner   llm.Client
	policy  Policy
	breaker *breaker

	// trace/clockMS are the observability seam (see trace.go): clockMS
	// is the accumulated simulated latency of traced calls, the call
	// path's logical clock.
	trace *obs.Tracer

	mu      sync.Mutex
	stats   Stats
	clockMS float64
}

// Wrap builds a resilient Client over inner with the given policy.
func Wrap(inner llm.Client, policy Policy) *Client {
	c := &Client{inner: inner, policy: policy.withDefaults()}
	if policy.Breaker != nil {
		c.breaker = newBreaker(*policy.Breaker)
	}
	return c
}

// Stats returns a snapshot of the middleware tally.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	if c.breaker != nil {
		_, s.Breaker = c.breaker.snapshot()
	}
	return s
}

// BreakerState reports the circuit's current position (BreakerClosed
// when no breaker is configured).
func (c *Client) BreakerState() BreakerState {
	if c.breaker == nil {
		return BreakerClosed
	}
	st, _ := c.breaker.snapshot()
	return st
}

// jitter returns a deterministic uniform in [0,1) for (key, attempt).
func jitter(key string, attempt int, seed uint64) float64 {
	h := token.Hash64Seed(fmt.Sprintf("%s\x00backoff\x00%d", key, attempt), seed)
	return float64(h>>11) / float64(1<<53)
}

// backoffFor computes the simulated wait before retry `attempt`
// (1-based): capped exponential with seeded equal-jitter.
func backoffFor(base, maxMS, jitterFrac float64, key string, attempt int, seed uint64) float64 {
	b := base
	for i := 1; i < attempt; i++ {
		b *= 2
		if b >= maxMS {
			b = maxMS
			break
		}
	}
	if b > maxMS {
		b = maxMS
	}
	return b*(1-jitterFrac) + b*jitterFrac*jitter(key, attempt, seed)
}

// Complete implements llm.Client.
func (c *Client) Complete(req llm.Request) (llm.Response, error) {
	c.count(func(s *Stats) { s.Calls++ })
	ct := c.traceCall()

	// waste accumulates what the failed attempts consumed; a final
	// success (or degraded answer) carries it so callers metering the
	// returned response see the true cost of the call, mirroring how
	// llm.Cascade charges the cheap tier's spend to the escalated
	// response.
	var waste llm.Response
	var lastErr error

	if c.breaker != nil {
		if ok, fastFailMS := c.breaker.allow(); !ok {
			waste.LatencyMS += fastFailMS
			ct.child("breaker-fastfail", fastFailMS)
			ct.bump("resilient/fastfails")
			lastErr = fmt.Errorf("%w (cooldown pending)", ErrCircuitOpen)
			return c.degrade(req, waste, lastErr, ct)
		}
	}

	maxAttempts := 1 + c.policy.MaxRetries
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			wait, hedged := c.retryWait(req.Prompt, attempt, lastErr)
			waste.LatencyMS += wait
			ct.child("backoff", wait)
			ct.bump("resilient/retries")
			if hedged {
				ct.bump("resilient/hedges")
			}
			c.count(func(s *Stats) {
				s.Retries++
				s.BackoffMS += wait
				if hedged {
					s.Hedges++
				}
			})
		}
		c.count(func(s *Stats) { s.Attempts++ })
		resp, err := c.inner.Complete(req)
		ct.child("attempt", resp.LatencyMS)
		if c.breaker != nil {
			c.breaker.advance(resp.LatencyMS)
		}
		if err == nil {
			if c.breaker != nil {
				c.breaker.onSuccess()
			}
			// A success slower than the hedge offset already triggered
			// its hedge; the cancelled duplicate's prefill is waste. No
			// serial latency is charged — the race overlapped the
			// primary — and the cancelled request never emitted output,
			// so it costs the prompt tokens and the prompt's share of
			// the call price.
			if c.policy.HedgeAfterMS > 0 && resp.LatencyMS > c.policy.HedgeAfterMS {
				dup := llm.Response{PromptTokens: resp.PromptTokens}
				if tot := resp.PromptTokens + resp.CompletionTokens; tot > 0 {
					dup.CostUSD = resp.CostUSD * float64(resp.PromptTokens) / float64(tot)
				}
				ct.bump("resilient/hedges_lost")
				c.count(func(s *Stats) {
					s.HedgesLost++
					s.HedgeWastedTokens += int64(dup.PromptTokens)
				})
				waste = merge(waste, dup)
			}
			c.chargeWaste(waste)
			c.traceDone(ct, "ok")
			return merge(resp, waste), nil
		}
		// The failed attempt's charged work (a timeout's prompt tokens
		// and deadline latency) is waste the final answer must carry.
		waste = merge(waste, resp)
		lastErr = err
		if !llm.IsRetryable(err) {
			break
		}
	}
	if c.breaker != nil {
		c.breaker.onFailure()
	}
	return c.degrade(req, waste, lastErr, ct)
}

// retryWait computes the simulated wait charged before a retry, and
// whether the hedging model absorbed it. Precedence: a timed-out
// attempt under hedging charges only the hedge offset (the hedge was
// already racing when the timeout fired); a rate-limit with a
// retry-after hint charges the hint; everything else charges the
// jittered exponential backoff.
func (c *Client) retryWait(prompt string, attempt int, lastErr error) (waitMS float64, hedged bool) {
	if c.policy.HedgeAfterMS > 0 && errors.Is(lastErr, llm.ErrTimeout) {
		return c.policy.HedgeAfterMS, true
	}
	if ms, ok := llm.RetryAfter(lastErr); ok {
		c.count(func(s *Stats) { s.RateLimitWaits++ })
		return ms, false
	}
	return backoffFor(c.policy.BaseBackoffMS, c.policy.MaxBackoffMS, c.policy.JitterFrac,
		prompt, attempt, c.policy.Seed), false
}

// degrade applies the degradation ladder once the primary path has
// failed: fallback client, then explicit refusal, then the error.
func (c *Client) degrade(req llm.Request, waste llm.Response, lastErr error, ct *callTrace) (llm.Response, error) {
	if c.policy.Fallback != nil {
		resp, err := c.policy.Fallback.Complete(req)
		ct.child("fallback", resp.LatencyMS)
		if err == nil {
			resp.Degraded = true
			ct.bump("resilient/fallbacks")
			c.count(func(s *Stats) { s.FallbackCalls++ })
			c.chargeWaste(waste)
			c.traceDone(ct, "fallback")
			return merge(resp, waste), nil
		}
		waste = merge(waste, resp)
		lastErr = err
	}
	if c.policy.DegradeToRefusal {
		ct.bump("resilient/refusals")
		c.count(func(s *Stats) { s.DegradedRefusals++ })
		c.chargeWaste(waste)
		c.traceDone(ct, "refusal")
		out := waste
		out.Text = llm.Unknown
		out.Confidence = 0
		out.Degraded = true
		return out, nil
	}
	c.count(func(s *Stats) { s.Failures++ })
	c.chargeWaste(waste)
	c.traceDone(ct, "error")
	// Return the accumulated charged work alongside the error so
	// callers that meter error responses still see the waste.
	return waste, fmt.Errorf("resilient: %w", lastErr)
}

// chargeWaste folds the accumulated failed-attempt spend into Stats.
func (c *Client) chargeWaste(w llm.Response) {
	if w.PromptTokens == 0 && w.CompletionTokens == 0 && w.CostUSD == 0 && w.LatencyMS == 0 {
		return
	}
	c.count(func(s *Stats) {
		s.WastedPromptTokens += int64(w.PromptTokens)
		s.WastedCompletionTokens += int64(w.CompletionTokens)
		s.WastedCostUSD += w.CostUSD
		s.WastedLatencyMS += w.LatencyMS
	})
}

// merge adds b's metered spend to a, keeping a's answer fields.
func merge(a, b llm.Response) llm.Response {
	a.PromptTokens += b.PromptTokens
	a.CompletionTokens += b.CompletionTokens
	a.CostUSD += b.CostUSD
	a.LatencyMS += b.LatencyMS
	return a
}

func (c *Client) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// Retrier applies the same bounded-retry discipline to arbitrary step
// functions — the agent's tool-invocation loop uses it in place of its
// former ad-hoc loop. Backoff is charged, not slept, exactly as in
// Client; a zero BaseBackoffMS charges nothing, preserving legacy
// behaviour.
type Retrier struct {
	// MaxRetries is how many times fn is re-run after its first
	// failure.
	MaxRetries int
	// BaseBackoffMS / MaxBackoffMS / JitterFrac / Seed mirror Policy;
	// all-zero means retry immediately with no charged wait.
	BaseBackoffMS float64
	MaxBackoffMS  float64
	JitterFrac    float64
	Seed          uint64
}

// Do runs fn(attempt) until it returns nil or the retry budget is
// exhausted. It reports the number of retries performed, the total
// simulated backoff charged, and fn's final error (nil on success).
func (r Retrier) Do(key string, fn func(attempt int) error) (retries int, backoffMS float64, err error) {
	maxMS := r.MaxBackoffMS
	if maxMS <= 0 {
		maxMS = r.BaseBackoffMS
	}
	for attempt := 0; ; attempt++ {
		err = fn(attempt)
		if err == nil || attempt >= r.MaxRetries {
			return attempt, backoffMS, err
		}
		if r.BaseBackoffMS > 0 {
			backoffMS += backoffFor(r.BaseBackoffMS, maxMS, r.JitterFrac, key, attempt+1, r.Seed)
		}
	}
}
