package prompting

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dataai/internal/corpus"
	"dataai/internal/embed"
	"dataai/internal/llm"
	"dataai/internal/token"
)

func demoPool(t *testing.T) ([]llm.Example, []llm.Example, []string) {
	t.Helper()
	gen, err := corpus.NewGenerator(corpus.DefaultConfig(201))
	if err != nil {
		t.Fatal(err)
	}
	c := gen.Generate()
	var pool, test []llm.Example
	for _, d := range c.Docs {
		if d.Kind != corpus.Clean {
			continue
		}
		ex := llm.Example{Input: d.Text, Label: d.Domain}
		if len(pool) < 200 {
			pool = append(pool, ex)
		} else if len(test) < 100 {
			test = append(test, ex)
		}
	}
	return pool, test, c.Domains
}

func TestNewDemoSelectorEmpty(t *testing.T) {
	if _, err := NewDemoSelector(embed.NewHashEmbedder(32), nil); !errors.Is(err, ErrEmptyPool) {
		t.Errorf("err = %v", err)
	}
}

func TestSimilarReturnsSameDomainDemos(t *testing.T) {
	pool, test, _ := demoPool(t)
	sel, err := NewDemoSelector(embed.NewHashEmbedder(embed.DefaultDim), pool)
	if err != nil {
		t.Fatal(err)
	}
	sameDomain, total := 0, 0
	for _, tc := range test[:30] {
		demos, err := sel.Similar(tc.Input, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(demos) != 4 {
			t.Fatalf("got %d demos", len(demos))
		}
		for _, d := range demos {
			total++
			if d.Label == tc.Label {
				sameDomain++
			}
		}
	}
	if frac := float64(sameDomain) / float64(total); frac < 0.7 {
		t.Errorf("similar demos same-domain fraction %v too low", frac)
	}
}

func TestRandomSelection(t *testing.T) {
	pool, _, _ := demoPool(t)
	sel, err := NewDemoSelector(embed.NewHashEmbedder(64), pool)
	if err != nil {
		t.Fatal(err)
	}
	a := sel.Random(5, 1)
	b := sel.Random(5, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random selection not deterministic per seed")
		}
	}
	if len(sel.Random(10000, 2)) != len(pool) {
		t.Error("over-budget random selection not clamped")
	}
}

func TestSimilarDemosBeatRandomAndZeroShot(t *testing.T) {
	// The §2.2.1 claim behind demonstration selection: few-shot helps,
	// and *selected* demonstrations help more than random ones.
	pool, test, domains := demoPool(t)
	m := llm.LargeModel()
	m.ErrRate = 0.35 // headroom for in-context learning to matter
	m.ContextWindow = 1 << 20
	client := llm.NewSimulator(m, 7)
	for _, d := range domains {
		client.RegisterLabel(d, domainKeywords(d))
	}
	sel, err := NewDemoSelector(embed.NewHashEmbedder(embed.DefaultDim), pool)
	if err != nil {
		t.Fatal(err)
	}
	score := func(mk func(tc llm.Example) string) float64 {
		right := 0
		for _, tc := range test {
			resp, err := client.Complete(llm.Request{Prompt: mk(tc)})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Text == tc.Label {
				right++
			}
		}
		return float64(right) / float64(len(test))
	}
	zero := score(func(tc llm.Example) string {
		return llm.ClassifyPrompt(domains, tc.Input)
	})
	random := score(func(tc llm.Example) string {
		return llm.ClassifyPromptFewShot(domains, sel.Random(4, int64(token.Hash64(tc.Input)%1000)), tc.Input)
	})
	similar := score(func(tc llm.Example) string {
		demos, err := sel.Similar(tc.Input, 4)
		if err != nil {
			t.Fatal(err)
		}
		return llm.ClassifyPromptFewShot(domains, demos, tc.Input)
	})
	t.Logf("zero-shot %.2f, random demos %.2f, similar demos %.2f", zero, random, similar)
	if similar <= zero {
		t.Errorf("similar demos %v not better than zero-shot %v", similar, zero)
	}
	if similar < random {
		t.Errorf("similar demos %v worse than random %v", similar, random)
	}
}

func domainKeywords(d string) []string {
	switch d {
	case "finance":
		return []string{"market", "shares", "dividend", "portfolio", "merger", "equity", "earnings"}
	case "medicine":
		return []string{"clinical", "patient", "therapy", "immune", "diagnosis", "receptor"}
	case "technology":
		return []string{"compiler", "kernel", "protocol", "latency", "framework", "runtime"}
	default:
		return []string{"championship", "playoff", "referee", "stadium", "tournament", "season"}
	}
}

func TestCompressKeepsRelevantSentences(t *testing.T) {
	ctx := []string{
		"The weather was pleasant all week. The ceo of Zorvex Fi is anor. Stock tickers scrolled by.",
		"Unrelated filler about gardening tips. More filler about recipes.",
	}
	query := "What is the ceo of Zorvex Fi?"
	out := Compress(ctx, query, 12)
	joined := strings.Join(out, " ")
	if !strings.Contains(joined, "The ceo of Zorvex Fi is anor.") {
		t.Errorf("relevant sentence dropped: %v", out)
	}
	if token.Count(joined) > 12 {
		t.Errorf("budget exceeded: %d tokens", token.Count(joined))
	}
}

func TestCompressPreservesOrderAndBudget(t *testing.T) {
	var ctx []string
	for i := 0; i < 10; i++ {
		ctx = append(ctx, fmt.Sprintf("sentence number %d mentions zorvex today.", i))
	}
	out := Compress(ctx, "anything about zorvex", 25)
	total := 0
	prevIdx := -1
	for _, s := range out {
		total += token.Count(s)
		var idx int
		if _, err := fmt.Sscanf(s, "sentence number %d", &idx); err != nil {
			t.Fatalf("unexpected sentence %q", s)
		}
		if idx <= prevIdx {
			t.Error("original order not preserved")
		}
		prevIdx = idx
	}
	if total > 25 {
		t.Errorf("budget exceeded: %d", total)
	}
	if len(out) == 0 {
		t.Error("nothing kept")
	}
}

func TestCompressZeroBudget(t *testing.T) {
	if out := Compress([]string{"a sentence."}, "q", 0); out != nil {
		t.Errorf("zero budget kept %v", out)
	}
}

func TestCompressCutsRAGCostKeepsAccuracy(t *testing.T) {
	// End-to-end: grounded QA with compressed context costs less and
	// answers the same.
	gen, err := corpus.NewGenerator(corpus.DefaultConfig(207))
	if err != nil {
		t.Fatal(err)
	}
	c := gen.Generate()
	m := llm.LargeModel()
	m.ErrRate = 0
	m.HallucinationRate = 0
	m.ContextWindow = 1 << 20
	client := llm.NewSimulator(m, 3)

	var fullCost, compCost float64
	fullRight, compRight, n := 0, 0, 0
	for _, qa := range c.QAs {
		if qa.Hops != 1 || n >= 40 {
			continue
		}
		n++
		doc, _ := c.DocByID(qa.SupportDocs[0])
		ctx := []string{doc.Text}
		full, err := client.Complete(llm.Request{Prompt: llm.AnswerPrompt(qa.Question, ctx)})
		if err != nil {
			t.Fatal(err)
		}
		fullCost += full.CostUSD
		if full.Text == qa.Answer {
			fullRight++
		}
		compressed := Compress(ctx, qa.Question, 24)
		comp, err := client.Complete(llm.Request{Prompt: llm.AnswerPrompt(qa.Question, compressed)})
		if err != nil {
			t.Fatal(err)
		}
		compCost += comp.CostUSD
		if comp.Text == qa.Answer {
			compRight++
		}
	}
	if compCost >= fullCost*0.8 {
		t.Errorf("compression saved too little: %v vs %v", compCost, fullCost)
	}
	if compRight < fullRight-3 {
		t.Errorf("compression lost accuracy: %d vs %d of %d", compRight, fullRight, n)
	}
}
