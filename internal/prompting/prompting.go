// Package prompting implements the prompt-engineering techniques §2.2.1
// lists as the challenges of the prompting approach: "automatic prompting
// generation, demonstration examples selection, and prompting compression
// to reduce the LLMs cost".
//
//   - DemoSelector picks few-shot demonstrations for an input by embedding
//     similarity from a labeled pool (vs. the random baseline); similar
//     demonstrations buy more accuracy per prompt token.
//   - Compress shrinks retrieved context under a token budget by keeping
//     the sentences most relevant to the query, cutting prompt cost with
//     little accuracy loss.
package prompting

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/llm"
	"dataai/internal/token"
	"dataai/internal/vecdb"
)

// ErrEmptyPool indicates selection from an empty demonstration pool.
var ErrEmptyPool = errors.New("prompting: empty demonstration pool")

// DemoSelector picks demonstrations from a labeled pool.
type DemoSelector struct {
	pool  []llm.Example
	index *vecdb.Flat
	emb   embed.Embedder
}

// NewDemoSelector indexes the pool for similarity lookup.
func NewDemoSelector(e embed.Embedder, pool []llm.Example) (*DemoSelector, error) {
	if len(pool) == 0 {
		return nil, ErrEmptyPool
	}
	idx := vecdb.NewFlat(e.Dim())
	for i, ex := range pool {
		if err := idx.Add(fmt.Sprintf("d%05d", i), e.Embed(ex.Input)); err != nil {
			return nil, fmt.Errorf("prompting: index demo %d: %w", i, err)
		}
	}
	return &DemoSelector{pool: pool, index: idx, emb: e}, nil
}

// Similar returns the k pool demonstrations most similar to input.
func (s *DemoSelector) Similar(input string, k int) ([]llm.Example, error) {
	res, err := s.index.Search(s.emb.Embed(input), k)
	if err != nil {
		return nil, fmt.Errorf("prompting: demo search: %w", err)
	}
	out := make([]llm.Example, 0, len(res))
	for _, r := range res {
		var i int
		if _, err := fmt.Sscanf(r.ID, "d%05d", &i); err != nil {
			return nil, fmt.Errorf("prompting: bad demo id %q: %w", r.ID, err)
		}
		out = append(out, s.pool[i])
	}
	return out, nil
}

// Random returns k uniformly sampled demonstrations — the baseline
// selection policy.
func (s *DemoSelector) Random(k int, seed int64) []llm.Example {
	rng := rand.New(rand.NewSource(seed))
	if k > len(s.pool) {
		k = len(s.pool)
	}
	perm := rng.Perm(len(s.pool))[:k]
	out := make([]llm.Example, k)
	for i, p := range perm {
		out[i] = s.pool[p]
	}
	return out
}

// Compress keeps the context sentences most relevant to the query within
// a token budget, preserving original sentence order. Relevance is the
// count of distinctive query tokens a sentence contains; ties favor
// earlier sentences. This is extractive prompt compression: the grounding
// sentences survive, boilerplate is dropped.
func Compress(context []string, query string, budgetTokens int) []string {
	if budgetTokens <= 0 {
		return nil
	}
	queryToks := map[string]bool{}
	for _, t := range token.Tokenize(query) {
		if len(t) > 3 {
			queryToks[t] = true
		}
	}
	type sent struct {
		text   string
		tokens int
		score  int
		order  int
	}
	var sents []sent
	order := 0
	for _, c := range context {
		for _, s := range docstore.SplitSentences(c) {
			score := 0
			seen := map[string]bool{}
			for _, t := range token.Tokenize(s) {
				if queryToks[t] && !seen[t] {
					score++
					seen[t] = true
				}
			}
			sents = append(sents, sent{text: s, tokens: token.Count(s), score: score, order: order})
			order++
		}
	}
	sort.SliceStable(sents, func(i, j int) bool {
		if sents[i].score != sents[j].score {
			return sents[i].score > sents[j].score
		}
		return sents[i].order < sents[j].order
	})
	used := 0
	kept := make([]sent, 0, len(sents))
	for _, s := range sents {
		if used+s.tokens > budgetTokens && used > 0 {
			continue
		}
		if used+s.tokens > budgetTokens {
			break // single sentence over budget: keep nothing more
		}
		kept = append(kept, s)
		used += s.tokens
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].order < kept[j].order })
	out := make([]string, len(kept))
	for i, s := range kept {
		out[i] = s.text
	}
	return out
}
