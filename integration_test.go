package dataai

import (
	"fmt"
	"strings"
	"testing"

	"dataai/internal/corpus"
	"dataai/internal/dataprep"
	"dataai/internal/docstore"
	"dataai/internal/extract"
	"dataai/internal/llm"
	"dataai/internal/relation"
	"dataai/internal/semop"
	"dataai/internal/serving"
	"dataai/internal/workload"
)

// These integration tests compose subsystems across package boundaries in
// ways the per-package suites don't: extraction feeding the relational
// engine feeding semantic operators; the preparation pipeline feeding the
// LM feeding a selection filter; the workload generator feeding every
// serving policy with one set of invariants.

// TestExtractionToSemanticAnalytics runs the full LLM4Data chain: semi-
// structured records → Evaporate extraction → relational table → SQL →
// semantic filter over a joined text column.
func TestExtractionToSemanticAnalytics(t *testing.T) {
	records, err := corpus.GenerateRecords(301, 120, []string{"name", "owner", "status"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	client := NewSimulatedLLM(LargeModel(), 301)
	res, err := extract.Evaporate{Client: client, SampleSize: 10}.Extract(records)
	if err != nil {
		t.Fatal(err)
	}
	if acc := extract.Accuracy(records, res); acc < 0.9 {
		t.Fatalf("extraction accuracy %v too low to proceed", acc)
	}

	// Materialize with a synthetic note column for the semantic stage.
	tbl, err := relation.NewTable("entities", relation.Schema{
		{Name: "id", Type: relation.String},
		{Name: "owner", Type: relation.String},
		{Name: "note", Type: relation.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range records.Records {
		note := "routine maintenance entry"
		if i%5 == 0 {
			note = "flagged for urgent review after incident"
		}
		tbl.MustInsert(relation.Row{rec.ID, res.Values[rec.ID]["owner"], note})
	}

	// SQL aggregation over extracted values.
	cat := relation.Catalog{"entities": tbl}
	agg, err := cat.Query("SELECT count(*) AS n FROM entities")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := agg.Get(0, "n"); n != int64(120) {
		t.Fatalf("count = %v", n)
	}

	// Semantic filter over the text column.
	ex := semop.NewExecutor(client)
	urgent, err := semop.SemFilter{TextCol: "note", Criterion: "contains:urgent"}.Apply(ex, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if urgent.Len() != 24 {
		t.Errorf("urgent rows = %d, want 24", urgent.Len())
	}
	if ex.Calls == 0 || ex.Calls > 3 {
		t.Errorf("semantic filter calls = %d, want deduped to 2 distinct notes (+retries)", ex.Calls)
	}
}

// TestPrepPipelineFeedsSelectionAndLM chains cleaning → dedup → classifier
// filter → perplexity selection → LM training, checking each stage's
// output remains usable by the next.
func TestPrepPipelineFeedsSelectionAndLM(t *testing.T) {
	cfg := corpus.DefaultConfig(303)
	cfg.DuplicateFraction = 0.2
	cfg.NoisyFraction = 0.08
	c, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var goodSeed, badSeed []string
	for _, d := range c.Docs {
		if d.Kind == corpus.Clean && len(goodSeed) < 40 {
			goodSeed = append(goodSeed, d.Text)
		}
		if d.Kind == corpus.Noisy && len(badSeed) < 10 {
			badSeed = append(badSeed, d.Text)
		}
	}
	if len(badSeed) < 5 {
		t.Skip("not enough noisy docs")
	}
	cf, err := FitClassifierFilter(NewEmbedder(DefaultEmbedDim), goodSeed, badSeed)
	if err != nil {
		t.Fatal(err)
	}
	filtered, rep := ApplyFilters(c.Texts(),
		DefaultHeuristicFilter(),
		dataprep.ToxicityFilter{Lexicon: c.ToxicLexicon},
		cf,
	)
	if rep.Dropped == 0 {
		t.Fatal("nothing filtered")
	}
	mh, err := NewMinHasher(128, 32, 3, 303)
	if err != nil {
		t.Fatal(err)
	}
	deduped, _ := mh.Dedup(filtered, 0.6)

	sel := dataprep.PerplexitySelector{Target: goodSeed}
	idx, err := sel.Select(deduped, 150)
	if err != nil {
		t.Fatal(err)
	}
	lm := NewNGramLM()
	lm.TrainAll(dataprep.Pick(deduped, idx))
	ppl, err := lm.CorpusPerplexity(goodSeed)
	if err != nil {
		t.Fatal(err)
	}
	if ppl <= 1 || ppl > 100 {
		t.Errorf("end-of-pipeline perplexity %v implausible", ppl)
	}
}

// TestAllServingPoliciesShareInvariants runs one trace through every
// scheduler and checks the cross-policy invariants: same request set
// served, conservation of output tokens, monotone per-request times.
func TestAllServingPoliciesShareInvariants(t *testing.T) {
	gpu := serving.DefaultGPU()
	reqs, err := workload.Generate(workload.DefaultTrace(305, 200, 40))
	if err != nil {
		t.Fatal(err)
	}
	wantOut := 0
	for _, r := range reqs {
		wantOut += r.OutputTokens
	}
	type run struct {
		name string
		rep  *serving.Report
	}
	var runs []run
	static, err := serving.RunStatic(gpu, reqs, 16)
	if err != nil {
		t.Fatal(err)
	}
	runs = append(runs, run{"static", static})
	for _, opts := range []serving.ContinuousOpts{
		{},
		{ChunkTokens: 128},
		{OnDemand: true},
	} {
		rep, err := serving.RunContinuous(gpu, reqs, opts)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{fmt.Sprintf("continuous%+v", opts.ChunkTokens), rep})
	}
	disagg, err := serving.RunDisaggregated(gpu, reqs, serving.DisaggOpts{
		PrefillGPUs: 1, DecodeGPUs: 1, TransferMSPerToken: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	runs = append(runs, run{"disagg", disagg})

	for _, r := range runs {
		if len(r.rep.Results) != len(reqs) {
			t.Fatalf("%s: %d results for %d requests", r.name, len(r.rep.Results), len(reqs))
		}
		if r.rep.Rejected > 0 {
			t.Fatalf("%s: rejected %d on a roomy GPU", r.name, r.rep.Rejected)
		}
		if r.rep.OutputTokens != wantOut {
			t.Errorf("%s: output tokens %d, want %d", r.name, r.rep.OutputTokens, wantOut)
		}
		seen := map[string]bool{}
		for _, res := range r.rep.Results {
			if seen[res.Req.ID] {
				t.Fatalf("%s: duplicate result %s", r.name, res.Req.ID)
			}
			seen[res.Req.ID] = true
		}
	}
}

// TestFlywheelWithPreparedCorpus combines Data4LLM and LLM4Data: the
// flywheel runs over a corpus that was first cleaned by the preparation
// pipeline, and the cleaned index must not contain toxic text even after
// feedback ingestion.
func TestFlywheelWithPreparedCorpus(t *testing.T) {
	c, err := GenerateCorpus(DefaultCorpusConfig(307))
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := ApplyFilters(c.Texts(), DefaultHeuristicFilter(),
		dataprep.ToxicityFilter{Lexicon: c.ToxicLexicon})

	model := LargeModel()
	model.ContextWindow = 1 << 20
	client := NewSimulatedLLM(model, 307)
	emb := NewEmbedder(DefaultEmbedDim)
	pipeline, err := NewRAG(client, emb, NewFlatIndex(emb.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	var docs []docstore.Document
	for i, text := range clean[:len(clean)/10] {
		docs = append(docs, docstore.Document{ID: fmt.Sprintf("clean-%04d", i), Text: text})
	}
	if err := pipeline.Ingest(docs); err != nil {
		t.Fatal(err)
	}
	fw, err := NewFlywheel(pipeline, 0.8, 307)
	if err != nil {
		t.Fatal(err)
	}
	var qas []corpus.QA
	for _, qa := range c.QAs {
		if qa.Hops == 1 {
			qas = append(qas, qa)
		}
	}
	var first, last float64
	for iter := 0; iter < 4; iter++ {
		rep, err := fw.Iterate(qas[:40])
		if err != nil {
			t.Fatal(err)
		}
		if iter == 0 {
			first = rep.Accuracy()
		}
		last = rep.Accuracy()
	}
	if last <= first {
		t.Errorf("flywheel on prepared corpus did not improve: %v -> %v", first, last)
	}
}

// TestPromptCompressionInsideRAGLoop verifies the §2.2.1 compression
// technique composes with retrieval: compressing retrieved chunks before
// the answer call keeps the answer and cuts prompt tokens.
func TestPromptCompressionInsideRAGLoop(t *testing.T) {
	c, err := GenerateCorpus(DefaultCorpusConfig(309))
	if err != nil {
		t.Fatal(err)
	}
	model := LargeModel()
	model.ErrRate = 0
	model.HallucinationRate = 0
	model.ContextWindow = 1 << 20
	client := NewSimulatedLLM(model, 309)
	emb := NewEmbedder(DefaultEmbedDim)
	pipeline, err := NewRAG(client, emb, NewFlatIndex(emb.Dim()), RAGWithTopK(6))
	if err != nil {
		t.Fatal(err)
	}
	var docs []Document
	for _, d := range c.Docs {
		docs = append(docs, Document{ID: d.ID, Text: d.Text})
	}
	if err := pipeline.Ingest(docs); err != nil {
		t.Fatal(err)
	}
	var fullTokens, compTokens int
	fullRight, compRight, n := 0, 0, 0
	for _, qa := range c.QAs {
		if qa.Hops != 1 || n >= 30 {
			continue
		}
		n++
		hits, err := pipeline.Retrieve(qa.Question, 6)
		if err != nil {
			t.Fatal(err)
		}
		ctx := make([]string, len(hits))
		for i, h := range hits {
			ctx[i] = h.Chunk.Text
		}
		full, err := client.Complete(LLMRequest{Prompt: llm.AnswerPrompt(qa.Question, ctx)})
		if err != nil {
			t.Fatal(err)
		}
		fullTokens += full.PromptTokens
		if full.Text == qa.Answer {
			fullRight++
		}
		comp, err := client.Complete(LLMRequest{
			Prompt: llm.AnswerPrompt(qa.Question, CompressContext(ctx, qa.Question, 32)),
		})
		if err != nil {
			t.Fatal(err)
		}
		compTokens += comp.PromptTokens
		if comp.Text == qa.Answer {
			compRight++
		}
	}
	if compTokens >= fullTokens {
		t.Errorf("compression saved no tokens: %d vs %d", compTokens, fullTokens)
	}
	if compRight < fullRight-3 {
		t.Errorf("compression lost too much accuracy: %d vs %d of %d", compRight, fullRight, n)
	}
}

// TestSQLOverLakeMatchesPlannerCounts cross-checks two query paths: the
// planner's NL2SQL pipeline and direct SQL must agree on counts.
func TestSQLOverLakeMatchesPlannerCounts(t *testing.T) {
	c, err := GenerateCorpus(DefaultCorpusConfig(311))
	if err != nil {
		t.Fatal(err)
	}
	l, err := BuildLake(c)
	if err != nil {
		t.Fatal(err)
	}
	model := LargeModel()
	model.ErrRate = 0
	model.ContextWindow = 1 << 20
	planner, err := NewLakePlanner(NewSimulatedLLM(model, 311), l, NewEmbedder(DefaultEmbedDim))
	if err != nil {
		t.Fatal(err)
	}
	// Pick a (domain, relation, value) with a known count from the table.
	tbl := l.Tables["finance"]
	col := tbl.Schema[1].Name
	idx, err := tbl.Schema.Index(col)
	if err != nil {
		t.Fatal(err)
	}
	var value string
	for _, row := range tbl.Rows {
		if s, ok := row[idx].(string); ok {
			value = s
			break
		}
	}
	if value == "" {
		t.Skip("no non-null value")
	}
	direct, err := l.Tables.Query(fmt.Sprintf("SELECT count(*) FROM finance WHERE %s = '%s'", col, value))
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%v", direct.Rows[0][0])
	q := fmt.Sprintf("How many finance entities have %s %s?", strings.ReplaceAll(col, "_", " "), value)
	got, _, err := planner.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("planner count %q != direct SQL %q for %q", got, want, q)
	}
}
