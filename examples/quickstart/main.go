// Quickstart: the shortest end-to-end path through the library — generate
// a corpus with known facts, build a RAG pipeline over it, and ask a
// question the model could not answer closed-book.
package main

import (
	"fmt"
	"log"

	"dataai"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic corpus with ground-truth facts and QA pairs.
	c, err := dataai.GenerateCorpus(dataai.DefaultCorpusConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d documents, %d QA pairs\n", len(c.Docs), len(c.QAs))

	// 2. A simulated LLM with no knowledge of the corpus, an embedder,
	//    and a flat vector index.
	model := dataai.LargeModel()
	model.ContextWindow = 1 << 20
	client := dataai.NewSimulatedLLM(model, 42)
	emb := dataai.NewEmbedder(dataai.DefaultEmbedDim)
	pipeline, err := dataai.NewRAG(client, emb, dataai.NewFlatIndex(emb.Dim()))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Ingest the documents.
	docs := make([]dataai.Document, len(c.Docs))
	for i, d := range c.Docs {
		docs[i] = dataai.Document{ID: d.ID, Text: d.Text}
	}
	if err := pipeline.Ingest(docs); err != nil {
		log.Fatal(err)
	}

	// 4. Ask the first few corpus questions: closed-book vs grounded.
	for _, qa := range c.QAs[:5] {
		closed, err := client.Complete(dataai.LLMRequest{
			Prompt: "TASK: answer\nQUESTION: " + qa.Question,
		})
		if err != nil {
			log.Fatal(err)
		}
		grounded, err := pipeline.Answer(qa.Question)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q: %s\n  closed-book: %-12s RAG: %-12s gold: %s\n",
			qa.Question, closed.Text, grounded.Text, qa.Answer)
	}
}
