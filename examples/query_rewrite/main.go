// Query rewriting with verification: the §2.2.1 principle in action — an
// unreliable (simulated) LLM proposes rewrites, and execution-based
// equivalence checking against a witness database decides which to trust.
package main

import (
	"fmt"
	"log"

	"dataai/internal/relation"
	"dataai/internal/rewrite"
)

func main() {
	log.SetFlags(0)

	// Witness database with rows on predicate boundaries: the verifier
	// is only as good as the witness's ability to discriminate.
	tbl, err := relation.NewTable("orders", relation.Schema{
		{Name: "id", Type: relation.Int},
		{Name: "amount", Type: relation.Float},
		{Name: "region", Type: relation.String},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		region := "east"
		if i%2 == 0 {
			region = "west"
		}
		tbl.MustInsert(relation.Row{int64(i), float64(i * 10), region})
	}
	witness := relation.Catalog{"orders": tbl}

	r := &rewrite.Rewriter{
		// UnsoundRate 1: the "LLM" always also proposes a subtly wrong
		// bound relaxation, which the verifier must catch.
		Proposer: rewrite.SimulatedLLMProposer{UnsoundRate: 1, Seed: 7},
		Witness:  witness,
	}

	queries := []string{
		"SELECT id FROM orders WHERE amount > 100 AND amount > 50",
		"SELECT count(*) AS n FROM orders WHERE region = 'east' ORDER BY n",
		"SELECT id FROM orders WHERE amount >= 100",
		"SELECT id FROM orders WHERE region = 'east' AND region = 'east'",
	}
	for _, q := range queries {
		res, err := r.Rewrite(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("original: %s\n", q)
		if res.Applied != "" {
			fmt.Printf("  rewritten via %s:\n  %s\n", res.Applied, res.SQL)
		} else {
			fmt.Println("  kept as-is")
		}
		for _, rej := range res.Rejected {
			fmt.Printf("  rejected: %s\n", rej)
		}
		fmt.Println()
	}
}
