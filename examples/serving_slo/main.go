// Serving under SLOs: compares the surveyed serving policies (§2.3.2) on
// one trace and prints the goodput table — static batching, continuous
// batching, chunked prefill, and prefill/decode disaggregation on an
// equal GPU budget.
package main

import (
	"fmt"
	"log"
	"os"

	"dataai/internal/metrics"
	"dataai/internal/serving"
	"dataai/internal/workload"
)

func main() {
	log.SetFlags(0)
	const (
		n       = 400
		rate    = 90.0
		gpus    = 4
		ttftSLO = 1000.0
		tbtSLO  = 12.0
	)
	reqs, err := workload.Generate(workload.DefaultTrace(3, n, rate))
	if err != nil {
		log.Fatal(err)
	}
	gpu := serving.DefaultGPU()

	t := metrics.NewTable(
		fmt.Sprintf("serving %d reqs @ %.0f/s on %d GPUs, SLO TTFT<=%.0fms TBT<=%.0fms",
			n, rate, gpus, ttftSLO, tbtSLO),
		"policy", "tok/s", "p95 TTFT (ms)", "p95 TBT (ms)", "goodput")
	add := func(name string, rep *serving.Report) {
		t.AddRowf(name, rep.Throughput(), rep.TTFT.P95(), rep.TBT.P95(), rep.Goodput(ttftSLO, tbtSLO))
	}

	colo, err := serving.RunColocated(gpu, reqs, gpus, serving.ContinuousOpts{})
	if err != nil {
		log.Fatal(err)
	}
	add("colocated continuous", colo)

	chunked, err := serving.RunColocated(gpu, reqs, gpus, serving.ContinuousOpts{ChunkTokens: 128})
	if err != nil {
		log.Fatal(err)
	}
	add("colocated + chunked prefill", chunked)

	for _, split := range [][2]int{{1, 3}, {2, 2}} {
		rep, err := serving.RunDisaggregated(gpu, reqs, serving.DisaggOpts{
			PrefillGPUs: split[0], DecodeGPUs: split[1],
			TransferMSPerToken: 0.005, OverlapTransfer: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		add(fmt.Sprintf("disaggregated %dP+%dD", split[0], split[1]), rep)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
