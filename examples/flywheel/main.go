// Flywheel: the §2.4 data flywheel — a RAG service whose user feedback is
// folded back into its data each iteration, compounding accuracy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dataai/internal/core"
	"dataai/internal/corpus"
	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/llm"
	"dataai/internal/rag"
	"dataai/internal/vecdb"
)

func main() {
	log.SetFlags(0)
	gen, err := corpus.NewGenerator(corpus.DefaultConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	c := gen.Generate()

	m := llm.LargeModel()
	m.ContextWindow = 1 << 20
	client := llm.NewSimulator(m, 11)
	e := embed.NewHashEmbedder(embed.DefaultDim)
	pipeline, err := rag.New(client, e, vecdb.NewFlat(e.Dim()))
	if err != nil {
		log.Fatal(err)
	}
	// Start with 5% of the corpus indexed: the service launches with
	// thin coverage.
	var seed []docstore.Document
	for _, d := range c.Docs[:len(c.Docs)/20] {
		seed = append(seed, docstore.Document{ID: d.ID, Text: d.Text})
	}
	if err := pipeline.Ingest(seed); err != nil {
		log.Fatal(err)
	}

	fw, err := core.NewFlywheel(pipeline, 0.7, 99)
	if err != nil {
		log.Fatal(err)
	}
	var qas []corpus.QA
	for _, qa := range c.QAs {
		if qa.Hops == 1 {
			qas = append(qas, qa)
		}
	}
	rng := rand.New(rand.NewSource(5))
	fmt.Println("iter  accuracy  feedback  new-docs  index-chunks")
	for iter := 0; iter < 6; iter++ {
		batch := make([]corpus.QA, 40)
		for i := range batch {
			batch[i] = qas[rng.Intn(len(qas))]
		}
		rep, err := fw.Iterate(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %8.2f  %8d  %8d  %12d\n",
			iter, rep.Accuracy(), rep.Feedback, rep.NewDocs, rep.TotalDocs)
	}
}
