// Unstructured analytics: the paper's motivating LLM4Data workload
// (§2.2.2) — semantic operators over a table of documents, optimized
// three ways (reordering, caching, cascade), plus Evaporate-style schema
// extraction that turns semi-structured records into a SQL-queryable
// table.
package main

import (
	"fmt"
	"log"

	"dataai"
	"dataai/internal/corpus"
	"dataai/internal/extract"
	"dataai/internal/llm"
	"dataai/internal/relation"
	"dataai/internal/semop"
)

func main() {
	log.SetFlags(0)

	// --- Part 1: semantic operators with plan optimization. ---
	docs, err := relation.NewTable("docs", relation.Schema{
		{Name: "id", Type: relation.Int},
		{Name: "year", Type: relation.Int},
		{Name: "body", Type: relation.String},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		body := fmt.Sprintf("filing %d covers routine quarterly earnings", i)
		if i%4 == 0 {
			body = fmt.Sprintf("filing %d discloses a merger with a competitor", i)
		}
		year := int64(2023)
		if i%3 == 0 {
			year = 2024
		}
		docs.MustInsert(relation.Row{int64(i), year, body})
	}
	// Gold: merger (i%4==0) AND 2024 (i%3==0) -> i%12==0 -> 25 rows.
	ops := []semop.Op{
		semop.SemFilter{TextCol: "body", Criterion: "contains:merger", EstSelectivity: 0.25},
		semop.ClassicalFilter{
			Col:            "year",
			Pred:           func(v relation.Value) bool { return v == int64(2024) },
			EstSelectivity: 0.5,
		},
	}

	naive := semop.NewExecutor(dataai.NewSimulatedLLM(dataai.LargeModel(), 1))
	out, err := semop.NewPipeline(ops...).Run(naive, docs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive plan:     %3d rows, %3d LLM calls, $%.4f\n", out.Len(), naive.Calls, naive.CostUSD)

	opt := semop.NewExecutor(llm.NewCascade(
		dataai.NewSimulatedLLM(dataai.SmallModel(), 1),
		dataai.NewSimulatedLLM(dataai.LargeModel(), 1), 0.3))
	out, err = semop.NewPipeline(semop.Optimize(ops)...).Run(opt, docs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized plan: %3d rows, %3d LLM calls, $%.4f (reorder + cascade)\n",
		out.Len(), opt.Calls, opt.CostUSD)

	// --- Part 2: schema extraction to SQL. ---
	records, err := corpus.GenerateRecords(7, 150, []string{"name", "owner", "status"}, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	client := dataai.NewSimulatedLLM(dataai.LargeModel(), 2)
	res, err := extract.Evaporate{Client: client, SampleSize: 10}.Extract(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevaporate extraction: accuracy %.3f with %d LLM calls over %d records\n",
		extract.Accuracy(records, res), res.LLMCalls, len(records.Records))

	// Materialize as a relational table and query it in SQL.
	tbl, err := relation.NewTable("entities", relation.Schema{
		{Name: "id", Type: relation.String},
		{Name: "name", Type: relation.String},
		{Name: "owner", Type: relation.String},
		{Name: "status", Type: relation.String},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range records.Records {
		v := res.Values[rec.ID]
		tbl.MustInsert(relation.Row{rec.ID, v["name"], v["owner"], v["status"]})
	}
	q := "SELECT status, count(*) AS n FROM entities GROUP BY status ORDER BY n DESC LIMIT 3"
	result, err := relation.Catalog{"entities": tbl}.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SQL over extracted schema: %s\n", q)
	for i := 0; i < result.Len(); i++ {
		status, _ := result.Get(i, "status")
		n, _ := result.Get(i, "n")
		fmt.Printf("  %v: %v records\n", status, n)
	}
}
