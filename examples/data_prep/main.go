// Data preparation: the Data4LLM pipeline (§2.3.2) end to end — filter,
// dedup, select, mix — with the n-gram LM's held-out perplexity showing
// what each stage buys.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dataai/internal/corpus"
	"dataai/internal/dataprep"
	"dataai/internal/embed"
	"dataai/internal/llm/ngram"
)

func main() {
	log.SetFlags(0)

	cfg := corpus.DefaultConfig(7)
	cfg.DuplicateFraction = 0.25
	cfg.NoisyFraction = 0.08
	cfg.ToxicFraction = 0.07
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c := gen.Generate()

	// Held-out evaluation set: clean docs sampled across domains.
	perm := rand.New(rand.NewSource(1)).Perm(len(c.Docs))
	var heldOut, raw []string
	heldOutIDs := map[string]bool{}
	for _, pi := range perm {
		d := c.Docs[pi]
		if d.Kind == corpus.Clean && len(heldOut) < 60 {
			heldOut = append(heldOut, d.Text)
			heldOutIDs[d.ID] = true
		}
	}
	for _, pi := range perm {
		d := c.Docs[pi]
		if heldOutIDs[d.ID] || (d.Kind == corpus.Duplicate && heldOutIDs[d.DupOf]) {
			continue
		}
		raw = append(raw, d.Text)
	}

	score := func(name string, docs []string) {
		lm := ngram.New()
		lm.TrainAll(docs)
		ppl, err := lm.CorpusPerplexity(heldOut)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %4d docs   held-out ppl %.2f\n", name, len(docs), ppl)
	}

	score("raw crawl", raw)

	filtered, rep := dataprep.ApplyFilters(raw,
		dataprep.DefaultHeuristicFilter(),
		dataprep.ToxicityFilter{Lexicon: c.ToxicLexicon})
	fmt.Printf("  filters dropped %d (%v)\n", rep.Dropped, rep.ByFilter)
	score("after quality filters", filtered)

	mh, err := dataprep.NewMinHasher(128, 32, 3, 9)
	if err != nil {
		log.Fatal(err)
	}
	deduped, removed := mh.Dedup(filtered, 0.6)
	fmt.Printf("  dedup removed %d near-duplicates\n", len(removed))
	score("after minhash dedup", deduped)

	// Target-aware selection: pick the 120 docs most useful for the
	// finance domain, and evaluate on *finance* held-out text — targeted
	// selection optimizes for the target distribution, not the average.
	var target, finHeldOut []string
	finSeen := 0
	for _, d := range c.Docs {
		if d.Kind != corpus.Clean || d.Domain != "finance" {
			continue
		}
		if finSeen < 15 {
			target = append(target, d.Text)
		} else if finSeen < 45 {
			finHeldOut = append(finHeldOut, d.Text)
		}
		finSeen++
	}
	scoreFin := func(name string, docs []string) {
		lm := ngram.New()
		lm.TrainAll(docs)
		ppl, err := lm.CorpusPerplexity(finHeldOut)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %4d docs   finance ppl  %.2f\n", name, len(docs), ppl)
	}
	sel := dataprep.InfluenceSelector{Embedder: embed.NewHashEmbedder(embed.DefaultDim), Target: target}
	idx, err := sel.Select(deduped, 120)
	if err != nil {
		log.Fatal(err)
	}
	scoreFin("influence-selected (120)", dataprep.Pick(deduped, idx))

	rnd, err := dataprep.RandomSelector{Seed: 2}.Select(deduped, 120)
	if err != nil {
		log.Fatal(err)
	}
	scoreFin("random-selected (120)", dataprep.Pick(deduped, rnd))
}
