package dataai

// One testing.B benchmark per experiment in the reproduction suite (see
// DESIGN.md's experiment index). Each iteration regenerates the
// experiment's full table, so ns/op measures the end-to-end cost of the
// workload + baseline + technique; `go test -bench=. -benchmem` therefore
// doubles as a smoke-run of every experiment. Use `cmd/benchall` to see
// the tables themselves.

import (
	"testing"

	"dataai/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		for _, tbl := range out.Tables {
			if tbl.String() == "" {
				b.Fatalf("%s produced an empty table", id)
			}
		}
	}
}

func BenchmarkE1RAG(b *testing.B)        { benchExperiment(b, "E1") }
func BenchmarkE2SemOp(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3Extract(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4Linking(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5Planning(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6Mixture(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7Selection(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8Cleaning(b *testing.B)   { benchExperiment(b, "E8") }
func BenchmarkE9Checkpoint(b *testing.B) { benchExperiment(b, "E9") }
func BenchmarkE10Parallel(b *testing.B)  { benchExperiment(b, "E10") }
func BenchmarkE11Batching(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12Disagg(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13KVCache(b *testing.B)   { benchExperiment(b, "E13") }
func BenchmarkE14Eviction(b *testing.B)  { benchExperiment(b, "E14") }
func BenchmarkE15KVDecode(b *testing.B)  { benchExperiment(b, "E15") }
func BenchmarkE16VecDB(b *testing.B)     { benchExperiment(b, "E16") }
func BenchmarkE17Flywheel(b *testing.B)  { benchExperiment(b, "E17") }

func BenchmarkE18Parallel3D(b *testing.B)    { benchExperiment(b, "E18") }
func BenchmarkE19Prompting(b *testing.B)     { benchExperiment(b, "E19") }
func BenchmarkE20Rewrite(b *testing.B)       { benchExperiment(b, "E20") }
func BenchmarkE21Routing(b *testing.B)       { benchExperiment(b, "E21") }
func BenchmarkE22Resilience(b *testing.B)    { benchExperiment(b, "E22") }
func BenchmarkE23FaultRouting(b *testing.B)  { benchExperiment(b, "E23") }
func BenchmarkE24CrashRecovery(b *testing.B) { benchExperiment(b, "E24") }
func BenchmarkE25MultiTenant(b *testing.B)   { benchExperiment(b, "E25") }
