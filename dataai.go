// Package dataai is the public facade of the Data+AI library — a Go
// implementation of the architecture in "Data+AI: LLM4Data and Data4LLM"
// (Li, Wang, Zhang, Wang; SIGMOD 2025).
//
// The library has two faces, mirroring the paper's two directions:
//
// LLM4Data — using (simulated) LLMs to process data:
//
//	client := dataai.NewSimulatedLLM(dataai.LargeModel(), 42)
//	emb := dataai.NewEmbedder(dataai.DefaultEmbedDim)
//	pipeline, _ := dataai.NewRAG(client, emb, dataai.NewFlatIndex(emb.Dim()))
//	_ = pipeline.Ingest(docs)
//	answer, _ := pipeline.Answer("What is the ceo of Zorvex Fi?")
//
// Data4LLM — using data management to optimize the LLM lifecycle:
//
//	clean, report := dataai.ApplyFilters(docs, dataai.DefaultHeuristicFilter())
//	kept, _ := minhash.Dedup(clean, 0.6)
//	lm := dataai.NewNGramLM()
//	lm.TrainAll(kept)
//
// Every subsystem the paper surveys is available through the subpackage
// re-exports below; the experiment suite in bench_test.go and
// cmd/benchall regenerates the paper's qualitative claims end to end.
package dataai

import (
	"dataai/internal/agent"
	"dataai/internal/core"
	"dataai/internal/corpus"
	"dataai/internal/dataprep"
	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/extract"
	"dataai/internal/faults"
	"dataai/internal/lake"
	"dataai/internal/llm"
	"dataai/internal/llm/ngram"
	"dataai/internal/metrics"
	"dataai/internal/obs"
	"dataai/internal/prompting"
	"dataai/internal/rag"
	"dataai/internal/relation"
	"dataai/internal/resilient"
	"dataai/internal/rewrite"
	"dataai/internal/semop"
	"dataai/internal/serving"
	"dataai/internal/training"
	"dataai/internal/vecdb"
	"dataai/internal/workload"
)

// DefaultEmbedDim is the conventional embedding dimensionality.
const DefaultEmbedDim = embed.DefaultDim

// --- Simulated LLM substrate (package llm) ---

// LLMClient completes prompts; implementations include the simulator,
// response cache, and model cascade.
type LLMClient = llm.Client

// LLMModel describes a simulated model tier.
type LLMModel = llm.Model

// LLMRequest and LLMResponse are the completion call types.
type (
	LLMRequest  = llm.Request
	LLMResponse = llm.Response
)

// LargeModel and SmallModel are the built-in model tiers.
var (
	LargeModel = llm.LargeModel
	SmallModel = llm.SmallModel
)

// NewSimulatedLLM builds the deterministic LLM simulator.
func NewSimulatedLLM(m LLMModel, seed uint64) *llm.Simulator { return llm.NewSimulator(m, seed) }

// NewLLMCache wraps a client with an exact-prompt response cache.
func NewLLMCache(inner LLMClient) *llm.Cache { return llm.NewCache(inner) }

// NewLLMCascade routes cheap-first with confidence-based escalation.
func NewLLMCascade(cheap, expensive LLMClient, threshold float64) *llm.Cascade {
	return llm.NewCascade(cheap, expensive, threshold)
}

// NewNGramLM builds the statistical language model used for perplexity
// scoring and Markov synthesis.
func NewNGramLM() *ngram.Model { return ngram.New() }

// --- Fault injection and resilience (packages faults, resilient) ---

// FaultPlan sets per-call fault probabilities for the injector;
// LightFaults/MediumFaults/SevereFaults are the standard presets.
type FaultPlan = faults.Plan

// LightFaults, MediumFaults, and SevereFaults are the preset fault
// severities used by experiment E22.
var (
	LightFaults  = faults.Light
	MediumFaults = faults.Medium
	SevereFaults = faults.Severe
)

// NewFaultInjector wraps a client with the deterministic seeded fault
// injector: every fault is a pure function of (prompt, seed, attempt#).
func NewFaultInjector(inner LLMClient, plan FaultPlan, seed uint64) *faults.Injector {
	return faults.New(inner, plan, seed)
}

// ResiliencePolicy configures the resilience middleware; RetryOnly and
// FullResilience are the standard presets.
type ResiliencePolicy = resilient.Policy

// RetryOnly and FullResilience are the preset policies used by
// experiment E22.
var (
	RetryOnly      = resilient.RetryOnly
	FullResilience = resilient.Full
)

// WrapResilient layers retry/backoff, circuit breaking, hedging, and
// graceful degradation over any client; all waits are charged to
// simulated latency, never slept.
func WrapResilient(inner LLMClient, policy ResiliencePolicy) *resilient.Client {
	return resilient.Wrap(inner, policy)
}

// --- Embeddings and vector search (packages embed, vecdb) ---

// Embedder converts text to vectors.
type Embedder = embed.Embedder

// NewEmbedder builds the deterministic hash embedder.
func NewEmbedder(dim int) *embed.HashEmbedder { return embed.NewHashEmbedder(dim) }

// VectorIndex is the vector database contract.
type VectorIndex = vecdb.Index

// NewFlatIndex, NewIVFIndex, and NewHNSWIndex build the three index types.
func NewFlatIndex(dim int) *vecdb.Flat { return vecdb.NewFlat(dim) }

// NewIVFIndex builds an inverted-file index (train before searching).
func NewIVFIndex(dim, nlist, nprobe int, seed int64) *vecdb.IVF {
	return vecdb.NewIVF(dim, nlist, nprobe, seed)
}

// NewHNSWIndex builds a hierarchical navigable small world graph index.
func NewHNSWIndex(dim, m, efConstruction int, seed int64) *vecdb.HNSW {
	return vecdb.NewHNSW(dim, m, efConstruction, seed)
}

// --- Documents and corpora (packages docstore, corpus) ---

// Document is a stored source document; Chunk a retrieval unit.
type (
	Document = docstore.Document
	Chunk    = docstore.Chunk
)

// SentenceChunker and FixedChunker are the segmentation policies.
type (
	SentenceChunker = docstore.SentenceChunker
	FixedChunker    = docstore.FixedChunker
)

// CorpusConfig controls synthetic corpus generation; Corpus is the result.
type (
	CorpusConfig = corpus.Config
	Corpus       = corpus.Corpus
)

// DefaultCorpusConfig returns the standard four-domain configuration.
var DefaultCorpusConfig = corpus.DefaultConfig

// GenerateCorpus builds a synthetic corpus with known ground truth.
func GenerateCorpus(cfg CorpusConfig) (*Corpus, error) {
	g, err := corpus.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}

// --- LLM4Data (packages rag, semop, extract, lake, agent, relation) ---

// RAG is the retrieval-augmented generation pipeline.
type RAG = rag.Pipeline

// NewRAG assembles a RAG pipeline.
func NewRAG(client LLMClient, e Embedder, idx VectorIndex, opts ...rag.Option) (*RAG, error) {
	return rag.New(client, e, idx, opts...)
}

// RAGWithRerank and RAGWithTopK configure NewRAG.
var (
	RAGWithRerank = rag.WithRerank
	RAGWithTopK   = rag.WithTopK
)

// Semantic operators over relational tables with text columns.
type (
	SemExecutor  = semop.Executor
	SemFilter    = semop.SemFilter
	SemExtractOp = semop.SemExtract
)

// NewSemExecutor builds a semantic-operator executor.
func NewSemExecutor(client LLMClient) *semop.Executor { return semop.NewExecutor(client) }

// OptimizeSemOps reorders a semantic-operator pipeline for cost.
var OptimizeSemOps = semop.Optimize

// Table is the in-memory relational table; Catalog resolves names for SQL.
type (
	Table   = relation.Table
	Schema  = relation.Schema
	Catalog = relation.Catalog
)

// NewTable creates a typed relational table.
var NewTable = relation.NewTable

// Schema extraction strategies (Evaporate).
type (
	DirectExtractor    = extract.Direct
	EvaporateExtractor = extract.Evaporate
)

// Lake is a multi-modal data lake; LakePlanner compiles NL queries into
// tool pipelines over it.
type (
	Lake        = lake.Lake
	LakePlanner = lake.Planner
)

// BuildLake constructs a lake from a corpus.
var BuildLake = lake.BuildFromCorpus

// NewLakePlanner wires the SYMPHONY/CAESURA-style planner.
var NewLakePlanner = lake.NewPlanner

// Query rewriting with execution-based equivalence verification.
type (
	QueryRewriter        = rewrite.Rewriter
	RewriteProposer      = rewrite.Proposer
	SimulatedLLMProposer = rewrite.SimulatedLLMProposer
)

// ParseQuery parses SQL into a structured, rewritable form.
var ParseQuery = relation.ParseQuery

// Agent executes multi-step tool plans with self-reflection.
type (
	Agent     = agent.Agent
	AgentTool = agent.Tool
)

// NewAgent builds an agent over a tool registry.
var NewAgent = agent.New

// Prompting techniques (§2.2.1): demonstration selection and compression.
type (
	DemoSelector = prompting.DemoSelector
	LLMExample   = llm.Example
)

// Prompting entry points.
var (
	NewDemoSelector = prompting.NewDemoSelector
	CompressContext = prompting.Compress
	// ClassifyFewShot builds a classification prompt with demonstrations.
	ClassifyFewShot = llm.ClassifyPromptFewShot
)

// --- Data4LLM (packages dataprep, training, serving, workload) ---

// Data preparation primitives.
type (
	Filter     = dataprep.Filter
	MinHasher  = dataprep.MinHasher
	Selector   = dataprep.Selector
	DomainPool = dataprep.DomainPool
	Mixture    = dataprep.Mixture
)

// Cleaning and dedup entry points.
var (
	ApplyFilters           = dataprep.ApplyFilters
	DefaultHeuristicFilter = dataprep.DefaultHeuristicFilter
	FitClassifierFilter    = dataprep.FitClassifierFilter
	NewMinHasher           = dataprep.NewMinHasher
	ExactDedup             = dataprep.ExactDedup
)

// Selection and mixture entry points.
var (
	ImportanceMixture = dataprep.ImportanceMixture
	GradientMixture   = dataprep.GradientMixture
	UniformMixture    = dataprep.UniformMixture
)

// Training simulation.
type (
	TrainModelConfig = training.ModelConfig
	TrainCluster     = training.ClusterConfig
	TrainStrategy    = training.Strategy
	TrainCheckpoint  = training.Checkpoint
)

// Training strategies and helpers.
const (
	StrategyDP    = training.DP
	StrategyZeRO1 = training.ZeRO1
	StrategyZeRO2 = training.ZeRO2
	StrategyZeRO3 = training.ZeRO3
	StrategyFSDP  = training.FSDP
)

// ParallelConfig is a 3D (data × pipeline × tensor) parallel layout.
type ParallelConfig = training.ParallelConfig

// Training entry points.
var (
	MemoryPerWorker   = training.MemoryPerWorker
	SimulateTraining  = training.SimulateRun
	NewCheckpoint     = training.NewCheckpoint
	MemoryPerDevice3D = training.MemoryPerDevice3D
	StepTime3D        = training.StepTime3D
	BestLayout        = training.BestLayout
)

// Serving simulation.
type (
	ServingGPU       = serving.GPUConfig
	ServingReport    = serving.Report
	ServingRequest   = workload.Request
	ContinuousOpts   = serving.ContinuousOpts
	DisaggOpts       = serving.DisaggOpts
	RouterPolicy     = serving.RouterPolicy
	RoutedReport     = serving.RoutedReport
	ServingFaultPlan = serving.FaultPlan
	// RecoveryConfig turns on the crash-survivable stack for routed
	// runs: periodic decode-state checkpoints, live session migration,
	// and tiered (GPU+CPU) prefix caches.
	RecoveryConfig    = serving.RecoveryConfig
	PrefixCacheConfig = serving.PrefixCacheConfig
)

// Multi-tenant serving: workload specs with per-client tenants, SLO
// classes and arrival processes; token-bucket admission at the router;
// class-aware batch formation; per-tenant outcomes.
type (
	WorkloadSpec    = workload.WorkloadSpec
	ClientSpec      = workload.ClientSpec
	ArrivalSpec     = workload.ArrivalSpec
	LengthSpec      = workload.LengthSpec
	SLOClass        = workload.SLOClass
	ArrivalProcess  = workload.ArrivalProcess
	AdmissionConfig = serving.AdmissionConfig
	AdmissionPolicy = serving.AdmissionPolicy
	SchedPolicy     = serving.SchedPolicy
	TenantStats     = serving.TenantStats
)

// Multi-tenant enums: SLO classes, arrival processes, admission
// policies, and batch-formation orders.
const (
	SLOInteractive = workload.Interactive
	SLOBatch       = workload.Batch

	ArrivePoisson     = workload.Poisson
	ArriveGammaBurst  = workload.GammaBurst
	ArriveDiurnalRamp = workload.DiurnalRamp

	AdmitAll    = serving.AdmitAll
	AdmitReject = serving.AdmitReject
	AdmitQueue  = serving.AdmitQueue

	SchedFCFS     = serving.SchedFCFS
	SchedPriority = serving.SchedPriority
	SchedSJF      = serving.SchedSJF
)

// Routing policies for multi-instance serving.
const (
	RouteRoundRobin   = serving.RoundRobin
	RouteCacheAware   = serving.CacheAware
	RouteBreakerAware = serving.BreakerAware
)

// Serving entry points.
var (
	DefaultGPU        = serving.DefaultGPU
	RunStaticBatching = serving.RunStatic
	RunContinuous     = serving.RunContinuous
	RunDisaggregated  = serving.RunDisaggregated
	RunRouted         = serving.RunRouted
	RunRoutedFaults   = serving.RunRoutedFaults
	// RunRoutedRecovery is RunRoutedFaults plus a RecoveryConfig; the
	// zero config reproduces RunRoutedFaults exactly.
	RunRoutedRecovery    = serving.RunRoutedRecovery
	MediumFaultPlan      = serving.MediumFaultPlan
	SevereFaultPlan      = serving.SevereFaultPlan
	CorrelatedFaultPlan  = serving.CorrelatedFaultPlan
	CascadeFaultPlan     = serving.CascadeFaultPlan
	NewTieredPrefixCache = serving.NewTieredPrefixCache
	GenerateTrace        = workload.Generate
	DefaultTrace         = workload.DefaultTrace
	// RunRoutedAdmission is RunRoutedRecovery plus per-tenant
	// token-bucket admission; the zero AdmissionConfig reproduces it
	// exactly.
	RunRoutedAdmission = serving.RunRoutedAdmission
	GenerateSpec       = workload.GenerateSpec
	DefaultMultiTenant = workload.DefaultMultiTenant
	JainIndex          = metrics.Jain
	JainWeighted       = metrics.JainWeighted
)

// Observability: logical-clock spans, a counter/gauge registry, and
// Perfetto-exportable Chrome traces. Attach a Tracer through
// ContinuousOpts.Trace / DisaggOpts.Trace (serving) or SetObs (LLM
// middleware); a nil Tracer costs nothing.
type (
	Tracer      = obs.Tracer
	TraceSpan   = obs.Span
	TraceMetric = obs.Metric
	// DecisionLog records every routing decision of a routed run
	// (attach via ContinuousOpts.Decisions); ReplayRegret prices each
	// recorded decision by counterfactual replay.
	DecisionLog     = obs.DecisionLog
	RoutingDecision = obs.Decision
	ForcedChoice    = serving.ForcedChoice
	ReplayConfig    = serving.ReplayConfig
	RegretSummary   = serving.RegretSummary
)

// Observability entry points.
var (
	NewTracer      = obs.NewTracer
	PhaseBreakdown = obs.PhaseBreakdown
	ReplayRegret   = serving.ReplayRegret
)

// --- Core orchestration (package core) ---

// Hub routes across registered models; Pipeline composes prep stages;
// Flywheel runs the §2.4 feedback loop.
type (
	Hub      = core.Hub
	Stage    = core.Stage
	Flywheel = core.Flywheel
)

// Orchestration entry points.
var (
	NewHub          = core.NewHub
	NewCorePipeline = core.NewPipeline
	NewFlywheel     = core.NewFlywheel
)
