package dataai

import (
	"strings"
	"testing"
)

// TestPublicAPISmoke exercises the facade's primary user journey: corpus
// → RAG → answer, and corpus → prep → LM. It guards the re-exports, not
// the behaviour (which the internal packages' suites cover).
func TestPublicAPISmoke(t *testing.T) {
	c, err := GenerateCorpus(DefaultCorpusConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) == 0 || len(c.QAs) == 0 {
		t.Fatal("empty corpus")
	}

	model := LargeModel()
	model.ErrRate = 0
	model.HallucinationRate = 0
	model.ContextWindow = 1 << 20
	client := NewSimulatedLLM(model, 5)
	emb := NewEmbedder(DefaultEmbedDim)
	pipeline, err := NewRAG(client, emb, NewFlatIndex(emb.Dim()), RAGWithTopK(4))
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]Document, len(c.Docs))
	for i, d := range c.Docs {
		docs[i] = Document{ID: d.ID, Text: d.Text}
	}
	if err := pipeline.Ingest(docs); err != nil {
		t.Fatal(err)
	}
	right := 0
	for _, qa := range c.QAs[:20] {
		a, err := pipeline.Answer(qa.Question)
		if err != nil {
			t.Fatal(err)
		}
		if a.Text == qa.Answer {
			right++
		}
	}
	if right < 10 {
		t.Errorf("facade RAG answered only %d/20", right)
	}

	// Data4LLM path.
	clean, rep := ApplyFilters(c.Texts(), DefaultHeuristicFilter())
	if rep.Kept != len(clean) {
		t.Error("filter report mismatch")
	}
	mh, err := NewMinHasher(64, 16, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	deduped, _ := mh.Dedup(clean, 0.6)
	if len(deduped) == 0 || len(deduped) > len(clean) {
		t.Error("dedup output out of range")
	}
	lm := NewNGramLM()
	lm.TrainAll(deduped)
	ppl, err := lm.CorpusPerplexity(c.Texts()[:10])
	if err != nil || ppl <= 0 {
		t.Fatalf("perplexity: %v %v", ppl, err)
	}

	// Training and serving facades.
	mem, err := MemoryPerWorker(TrainModelConfig{
		Params: 1e9, Layers: 12, BytesPerParam: 2, GradBytesPerParam: 2, OptimBytesPerParam: 12,
	}, StrategyZeRO3, 8)
	if err != nil || mem <= 0 {
		t.Fatalf("MemoryPerWorker: %v %v", mem, err)
	}
	trace, err := GenerateTrace(DefaultTrace(1, 50, 20))
	if err != nil {
		t.Fatal(err)
	}
	srep, err := RunContinuous(DefaultGPU(), trace, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if srep.Throughput() <= 0 {
		t.Error("no serving throughput")
	}

	// Hub + pipeline orchestration.
	hub := NewHub()
	if err := hub.Register("default", client, true); err != nil {
		t.Fatal(err)
	}
	out, reports, err := NewCorePipeline(Stage{
		Name: "upper",
		Fn: func(in []string) ([]string, error) {
			up := make([]string, len(in))
			for i, s := range in {
				up[i] = strings.ToUpper(s)
			}
			return up, nil
		},
	}).Run([]string{"a"})
	if err != nil || len(out) != 1 || len(reports) != 1 {
		t.Fatalf("core pipeline: %v %v %v", out, reports, err)
	}
}
