package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dataai/internal/lint"
)

// chdirTempModule writes a throwaway module, chdirs into it for the
// test's duration (run() loads relative to the working directory), and
// returns its root.
func chdirTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	return dir
}

const dirtyFloatEq = `package d

// Eq compares floats exactly: the floateq analyzer's bread and butter.
func Eq(a, b float64) bool { return a == b }
`

func TestListIsSortedAndComplete(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if want := len(lint.Analyzers()); len(lines) != want {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), want, out.String())
	}
	var names []string
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("-list line lacks a doc string: %q", line)
		}
		names = append(names, fields[0])
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("-list not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

func TestUnknownCheckExitsTwo(t *testing.T) {
	chdirTempModule(t, map[string]string{"go.mod": "module tmp\n\ngo 1.22\n", "d/d.go": dirtyFloatEq})
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "nosuchcheck", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("unknown check exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nosuchcheck") {
		t.Errorf("stderr does not name the bad check: %s", errOut.String())
	}
}

func TestFindingsExitOneAndChecksSubsets(t *testing.T) {
	chdirTempModule(t, map[string]string{"go.mod": "module tmp\n\ngo 1.22\n", "d/d.go": dirtyFloatEq})

	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 1 {
		t.Fatalf("dirty module exited %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[floateq]") {
		t.Errorf("finding not printed: %s", out.String())
	}

	// The subset that includes the firing check still fails...
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-checks", "floateq", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("-checks floateq exited %d, want 1", code)
	}
	// ...and the subset that excludes it passes.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-checks", "maporder,uncheckederr", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-checks maporder,uncheckederr exited %d, want 0; out: %s", code, out.String())
	}
}

func TestJSONAndSARIFOutputs(t *testing.T) {
	chdirTempModule(t, map[string]string{"go.mod": "module tmp\n\ngo 1.22\n", "d/d.go": dirtyFloatEq})

	var out, errOut strings.Builder
	if code := run([]string{"-json", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("-json exited %d, want 1", code)
	}
	if !strings.Contains(out.String(), `"check": "floateq"`) {
		t.Errorf("-json output missing the finding: %s", out.String())
	}
	if !strings.Contains(out.String(), `"file": "d/d.go"`) {
		t.Errorf("-json paths not relative to the working directory: %s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-sarif", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("-sarif exited %d, want 1", code)
	}
	if !strings.Contains(out.String(), "sarif-2.1.0") || !strings.Contains(out.String(), `"ruleId": "floateq"`) {
		t.Errorf("-sarif output malformed: %s", out.String())
	}
}

func TestFixIsIdempotent(t *testing.T) {
	dir := chdirTempModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.22\n",
		"d/d.go": `package d

//lint:ignore floateq long gone
func Add(a, b int) int { return a + b }
`,
	})

	// First -fix run deletes the stale directive and exits clean (the
	// stale finding carried a fix, so nothing remains).
	var out, errOut strings.Builder
	if code := run([]string{"-fix", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-fix exited %d: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "fixed ") {
		t.Errorf("-fix did not report the rewritten file: %s", out.String())
	}
	src, err := os.ReadFile(filepath.Join(dir, "d", "d.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(src), "lint:ignore") {
		t.Errorf("stale directive survived -fix:\n%s", src)
	}

	// Second run: clean tree, nothing rewritten — byte-for-byte stable.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-fix", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("second -fix exited %d: %s", code, errOut.String())
	}
	if out.String() != "" {
		t.Errorf("second -fix rewrote something: %s", out.String())
	}
	after, err := os.ReadFile(filepath.Join(dir, "d", "d.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(src) {
		t.Errorf("-fix not idempotent:\nfirst:\n%s\nsecond:\n%s", src, after)
	}
}

func TestVerboseReportsSkips(t *testing.T) {
	chdirTempModule(t, map[string]string{
		"go.mod":            "module tmp\n\ngo 1.22\n",
		"d/d.go":            "package d\n\nfunc A() {}\n",
		"d/gated.go":        "//go:build neverever\n\npackage d\n\nfunc B() {}\n",
		"only/only_test.go": "package only\n",
	})
	var out, errOut strings.Builder
	if code := run([]string{"-v", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-v exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "gated.go") || !strings.Contains(errOut.String(), "neverever") {
		t.Errorf("-v did not report the constraint-skipped file: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "only _test.go files") {
		t.Errorf("-v did not report the test-only package: %s", errOut.String())
	}
}
