// Command dataailint runs the repo's static-analysis suite
// (internal/lint) over the packages matched by its arguments and exits
// non-zero on findings. It is stdlib-only: packages are parsed with
// go/parser and type-checked with go/types, resolving module-local
// imports from sibling directories and the standard library from GOROOT
// source.
//
// Usage:
//
//	dataailint ./...                      # whole module (the default)
//	dataailint ./internal/vecdb           # one package
//	dataailint -checks floateq,maporder ./...
//	dataailint -list                      # list analyzers and exit
//	dataailint -fix ./...                 # apply suggested fixes in place
//	dataailint -sarif ./... > lint.sarif  # SARIF 2.1.0 for CI upload
//	dataailint -json ./...                # findings as a JSON array
//	dataailint -v ./...                   # also report skipped files/dirs
//
// When the full suite runs (no -checks), //lint:ignore directives that
// no longer suppress anything are reported as "staleignore" findings;
// -fix deletes them. -fix is idempotent: on a tree with no findings it
// changes nothing, which scripts/check.sh asserts with git diff.
//
// Suppress a finding with a trailing or preceding comment:
//
//	//lint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dataai/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so the CLI test exercises
// flag handling, exit codes, and output without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dataailint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all, plus the stale-suppression audit)")
	fix := fs.Bool("fix", false, "apply suggested fixes in place, then report what remains")
	sarif := fs.Bool("sarif", false, "write findings as SARIF 2.1.0 to stdout")
	jsonOut := fs.Bool("json", false, "write findings as a JSON array to stdout")
	verbose := fs.Bool("v", false, "report files and packages the loader skipped (build constraints, test-only dirs)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		width := 0
		for _, a := range lint.Analyzers() {
			if len(a.Name) > width {
				width = len(a.Name)
			}
		}
		for _, a := range lint.Analyzers() { // Analyzers() is sorted by name
			fmt.Fprintf(stdout, "%-*s  %s\n", width, a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	full := true
	if *checks != "" {
		full = false
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			a := lint.Lookup(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "dataailint: unknown check %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "dataailint: %v\n", err)
		return 2
	}
	pkgs, report, err := lint.LoadWithReport(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "dataailint: %v\n", err)
		return 2
	}
	if *verbose {
		for _, d := range report.TestOnlyDirs {
			fmt.Fprintf(stderr, "dataailint: %s: package has only _test.go files; nothing to analyze\n", d)
		}
		for _, f := range report.SkippedFiles {
			fmt.Fprintf(stderr, "dataailint: %s: skipped: %s\n", f.Path, f.Reason)
		}
	}

	// The stale-suppression audit is sound only over the full suite: a
	// directive for an analyzer excluded by -checks is not stale.
	var diags []lint.Diagnostic
	if full {
		diags = lint.RunAudited(pkgs, analyzers)
	} else {
		diags = lint.Run(pkgs, analyzers)
	}

	if *fix {
		res, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(stderr, "dataailint: %v\n", err)
			return 2
		}
		for _, f := range res.Files {
			fmt.Fprintf(stdout, "fixed %s\n", f)
		}
		remaining := 0
		for _, d := range diags {
			if len(d.SuggestedFixes) == 0 {
				fmt.Fprintln(stdout, d)
				remaining++
			}
		}
		if res.Skipped > 0 {
			fmt.Fprintf(stderr, "dataailint: %d overlapping fix(es) deferred; run -fix again\n", res.Skipped)
			return 1
		}
		if remaining > 0 {
			fmt.Fprintf(stderr, "dataailint: %d finding(s) without a suggested fix\n", remaining)
			return 1
		}
		return 0
	}

	switch {
	case *sarif:
		if err := lint.WriteSARIF(stdout, cwd, analyzers, diags); err != nil {
			fmt.Fprintf(stderr, "dataailint: %v\n", err)
			return 2
		}
	case *jsonOut:
		if err := lint.WriteJSON(stdout, cwd, diags); err != nil {
			fmt.Fprintf(stderr, "dataailint: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "dataailint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
