// Command dataailint runs the repo's static-analysis suite
// (internal/lint) over the packages matched by its arguments and exits
// non-zero on findings. It is stdlib-only: packages are parsed with
// go/parser and type-checked with go/types, resolving module-local
// imports from sibling directories and the standard library from GOROOT
// source.
//
// Usage:
//
//	dataailint ./...                      # whole module (the default)
//	dataailint ./internal/vecdb           # one package
//	dataailint -checks floateq,maporder ./...
//	dataailint -list                      # list analyzers and exit
//
// Suppress a finding with a trailing or preceding comment:
//
//	//lint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dataai/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *checks != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			a := lint.Lookup(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "dataailint: unknown check %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dataailint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dataailint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dataailint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
