// Command dataai is the end-to-end CLI: it generates a synthetic corpus,
// runs the Data4LLM preparation pipeline over it, trains the statistical
// LM, builds the LLM4Data retrieval stack, and answers questions — the
// full Figure 1 architecture in one process.
//
// Usage:
//
//	dataai -seed 42 -ask "What is the ceo of Zorvex Fi?"
//	dataai -seed 42 -prep            # print the preparation report
//	dataai -seed 42 -qa 50           # score RAG on 50 corpus questions
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dataai/internal/core"
	"dataai/internal/corpus"
	"dataai/internal/dataprep"
	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/llm"
	"dataai/internal/llm/ngram"
	"dataai/internal/metrics"
	"dataai/internal/rag"
	"dataai/internal/vecdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dataai: ")
	seed := flag.Int64("seed", 42, "corpus seed")
	ask := flag.String("ask", "", "answer one question with RAG")
	prep := flag.Bool("prep", false, "run and report the data-preparation pipeline")
	qa := flag.Int("qa", 0, "score RAG on n corpus questions")
	flag.Parse()

	gen, err := corpus.NewGenerator(corpus.DefaultConfig(*seed))
	if err != nil {
		log.Fatal(err)
	}
	c := gen.Generate()
	fmt.Printf("corpus: %d docs, %d facts, %d QA pairs, domains %v\n",
		len(c.Docs), len(c.Facts), len(c.QAs), c.Domains)

	if *prep {
		runPrep(c)
		return
	}

	m := llm.LargeModel()
	m.ContextWindow = 1 << 20
	client := llm.NewSimulator(m, uint64(*seed))
	e := embed.NewHashEmbedder(embed.DefaultDim)
	pipeline, err := rag.New(client, e, vecdb.NewFlat(e.Dim()))
	if err != nil {
		log.Fatal(err)
	}
	docs := make([]docstore.Document, len(c.Docs))
	for i, d := range c.Docs {
		docs[i] = docstore.Document{ID: d.ID, Text: d.Text}
	}
	if err := pipeline.Ingest(docs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d chunks\n", pipeline.ChunkCount())

	switch {
	case *ask != "":
		a, err := pipeline.AnswerIterative(*ask)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("answer: %s (confidence %.2f, %d hops, $%.5f)\n",
			a.Text, a.Confidence, a.Hops, a.CostUSD)
		for _, h := range a.Retrieved {
			fmt.Printf("  evidence [%s] %.3f: %s\n", h.Chunk.ID, h.Score, h.Chunk.Text)
		}
	case *qa > 0:
		n := *qa
		if n > len(c.QAs) {
			n = len(c.QAs)
		}
		right := 0
		var cost float64
		for _, q := range c.QAs[:n] {
			a, err := pipeline.AnswerIterative(q.Question)
			if err != nil {
				log.Fatal(err)
			}
			if a.Text == q.Answer {
				right++
			}
			cost += a.CostUSD
		}
		fmt.Printf("RAG accuracy: %d/%d (%.1f%%), total cost $%.4f\n",
			right, n, 100*float64(right)/float64(n), cost)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runPrep(c *corpus.Corpus) {
	docs := c.Texts()
	mh, err := dataprep.NewMinHasher(128, 32, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	p := core.NewPipeline(
		core.Stage{Name: "quality+toxicity filter", Fn: func(in []string) ([]string, error) {
			out, _ := dataprep.ApplyFilters(in,
				dataprep.DefaultHeuristicFilter(),
				dataprep.ToxicityFilter{Lexicon: c.ToxicLexicon})
			return out, nil
		}},
		core.Stage{Name: "minhash dedup", Fn: func(in []string) ([]string, error) {
			kept, _ := mh.Dedup(in, 0.6)
			return kept, nil
		}},
	)
	out, reports, err := p.Run(docs)
	if err != nil {
		log.Fatal(err)
	}
	t := metrics.NewTable("data preparation", "stage", "in", "out")
	for _, r := range reports {
		t.AddRowf(r.Name, r.In, r.Out)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	lm := ngram.New()
	lm.TrainAll(out)
	fmt.Printf("trained n-gram LM: %d tokens, vocab %d\n", lm.Tokens(), lm.VocabSize())
}
