//go:build !race

package main

// raceEnabled is false outside `go test -race`; see race_on.go.
const raceEnabled = false
