//go:build race

package main

// raceEnabled lets the golden test shrink its experiment set under the
// race detector, whose ~10x slowdown would push the long-running E16
// sweep past any reasonable test budget.
const raceEnabled = true
