// Command benchall regenerates every experiment table in the reproduction
// suite (the evaluation section the tutorial paper lacks — see DESIGN.md).
//
// Usage:
//
//	benchall                # run all experiments
//	benchall E11 E12        # run selected experiments
//	benchall -parallel 8    # run experiments concurrently (0 = GOMAXPROCS)
//	benchall -list          # list experiment IDs and titles
//
// Output is byte-identical at every -parallel value: each experiment's
// stdout section is rendered into a private buffer and the buffers are
// flushed in id order, so concurrency changes wall-clock only (the
// golden test in main_test.go pins this).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dataai/internal/experiments"
	"dataai/internal/par"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Int("parallel", 1, "experiments to run concurrently (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	// Validate the whole id list before running anything: a typo half
	// way through the list should not cost the minutes of experiments
	// before it.
	var unknown []string
	for _, id := range ids {
		if !experiments.Known(id) {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "benchall: unknown experiment id(s): %s\nvalid ids: %s\n",
			strings.Join(unknown, ", "), strings.Join(experiments.IDs(), " "))
		os.Exit(2)
	}
	os.Exit(runAll(ids, *parallel, os.Stdout, os.Stderr))
}

// section is one experiment's buffered output: the stdout bytes (header
// plus rendered table), the stderr bytes (failure message, if any), and
// whether the experiment failed.
type section struct {
	out    []byte
	errOut []byte
	failed bool
}

// runAll runs ids on up to workers goroutines (workers <= 0 means
// GOMAXPROCS) and flushes each experiment's buffered output in id-list
// order, producing the same stdout and stderr bytes as the serial loop.
// It returns the process exit code: 1 if any experiment failed, else 0.
func runAll(ids []string, workers int, stdout, stderr io.Writer) int {
	secs := par.Map(len(ids), workers, func(i int) section {
		id := ids[i]
		var out, errOut bytes.Buffer
		fmt.Fprintf(&out, "=== %s: %s\n", id, experiments.Title(id))
		tbl, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(&errOut, "%s failed: %v\n", id, err)
			return section{out: out.Bytes(), errOut: errOut.Bytes(), failed: true}
		}
		if err := tbl.Render(&out); err != nil {
			fmt.Fprintf(&errOut, "%s render: %v\n", id, err)
			return section{out: out.Bytes(), errOut: errOut.Bytes(), failed: true}
		}
		fmt.Fprintln(&out)
		return section{out: out.Bytes()}
	})
	failed := 0
	for _, s := range secs {
		fmt.Fprintf(stdout, "%s", s.out)
		if len(s.errOut) > 0 {
			fmt.Fprintf(stderr, "%s", s.errOut)
		}
		if s.failed {
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
