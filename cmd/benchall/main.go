// Command benchall regenerates every experiment table in the reproduction
// suite (the evaluation section the tutorial paper lacks — see DESIGN.md).
//
// Usage:
//
//	benchall            # run all experiments
//	benchall E11 E12    # run selected experiments
//	benchall -list      # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"dataai/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	failed := 0
	for _, id := range ids {
		fmt.Printf("=== %s: %s\n", id, experiments.Title(id))
		tbl, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed++
			continue
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s render: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
