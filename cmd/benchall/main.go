// Command benchall regenerates every experiment table in the reproduction
// suite (the evaluation section the tutorial paper lacks — see DESIGN.md).
//
// Usage:
//
//	benchall                      # run all experiments
//	benchall E11 E12              # run selected experiments
//	benchall -parallel 8          # run experiments concurrently (0 = GOMAXPROCS)
//	benchall -list                # list experiment IDs and titles
//	benchall -json results.json   # also write machine-readable results
//	benchall -trace-dir traces/   # write <id>.json Chrome traces for
//	                              # experiments that record a timeline
//	benchall -cpuprofile cpu.out  # write a pprof CPU profile of the run
//	                              # (go tool pprof cpu.out)
//
// Output is byte-identical at every -parallel value: each experiment's
// stdout section is rendered into a private buffer and the buffers are
// flushed in id order, so concurrency changes wall-clock only (the
// golden test in main_test.go pins this). The -json file serializes the
// same rendered cells the text tables show, so the two views can never
// disagree.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"dataai/internal/experiments"
	"dataai/internal/metrics"
	"dataai/internal/obs"
	"dataai/internal/par"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Int("parallel", 1, "experiments to run concurrently (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write machine-readable results to this path")
	traceDir := flag.String("trace-dir", "", "write per-experiment Chrome traces (Perfetto-loadable) into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this path")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	// Validate the whole id list before running anything: a typo half
	// way through the list should not cost the minutes of experiments
	// before it.
	var unknown []string
	for _, id := range ids {
		if !experiments.Known(id) {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "benchall: unknown experiment id(s): %s\nvalid ids: %s\n",
			strings.Join(unknown, ", "), strings.Join(experiments.IDs(), " "))
		os.Exit(2)
	}
	// Profiling brackets runAll explicitly (not via defer) because
	// os.Exit skips deferred calls; the profile must be stopped and the
	// file closed before the process exits or it is silently truncated.
	var profFile *os.File
	if *cpuProfile != "" {
		var err error
		profFile, err = os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(profFile); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	code := runAll(ids, *parallel, os.Stdout, os.Stderr, *jsonPath, *traceDir)
	if profFile != nil {
		pprof.StopCPUProfile()
		if err := profFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: cpuprofile: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// section is one experiment's buffered output: the stdout bytes (header
// plus rendered tables), the stderr bytes (failure message, if any),
// whether the experiment failed, and the structured results the -json
// and -trace-dir sinks serialize.
type section struct {
	id     string
	out    []byte
	errOut []byte
	failed bool
	tables []*metrics.Table
	trace  *obs.Tracer
}

// jsonResult is one experiment's entry in the -json file.
type jsonResult struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Failed bool        `json:"failed,omitempty"`
	Tables []jsonTable `json:"tables,omitempty"`
}

// jsonTable mirrors metrics.Table: the headers and the already-formatted
// cell strings, exactly as the text rendering shows them.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// runAll runs ids on up to workers goroutines (workers <= 0 means
// GOMAXPROCS) and flushes each experiment's buffered output in id-list
// order, producing the same stdout and stderr bytes as the serial loop.
// When jsonPath is non-empty it also writes the machine-readable result
// file; when traceDir is non-empty it writes <id>.json Chrome traces for
// experiments that recorded one. It returns the process exit code: 1 if
// any experiment (or sink write) failed, else 0.
func runAll(ids []string, workers int, stdout, stderr io.Writer, jsonPath, traceDir string) int {
	secs := par.Map(len(ids), workers, func(i int) section {
		id := ids[i]
		var out, errOut bytes.Buffer
		fmt.Fprintf(&out, "=== %s: %s\n", id, experiments.Title(id))
		res, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(&errOut, "%s failed: %v\n", id, err)
			return section{id: id, out: out.Bytes(), errOut: errOut.Bytes(), failed: true}
		}
		for _, tbl := range res.Tables {
			if err := tbl.Render(&out); err != nil {
				fmt.Fprintf(&errOut, "%s render: %v\n", id, err)
				return section{id: id, out: out.Bytes(), errOut: errOut.Bytes(), failed: true}
			}
		}
		fmt.Fprintln(&out)
		return section{id: id, out: out.Bytes(), tables: res.Tables, trace: res.Trace}
	})
	failed := 0
	for _, s := range secs {
		fmt.Fprintf(stdout, "%s", s.out)
		if len(s.errOut) > 0 {
			fmt.Fprintf(stderr, "%s", s.errOut)
		}
		if s.failed {
			failed++
		}
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, secs); err != nil {
			fmt.Fprintf(stderr, "benchall: %v\n", err)
			failed++
		}
	}
	if traceDir != "" {
		if err := writeTraces(traceDir, secs); err != nil {
			fmt.Fprintf(stderr, "benchall: %v\n", err)
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

func writeJSON(path string, secs []section) error {
	results := make([]jsonResult, 0, len(secs))
	for _, s := range secs {
		r := jsonResult{ID: s.id, Title: experiments.Title(s.id), Failed: s.failed}
		for _, tbl := range s.tables {
			r.Tables = append(r.Tables, jsonTable{Title: tbl.Title, Headers: tbl.Headers(), Rows: tbl.Rows()})
		}
		results = append(results, r)
	}
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func writeTraces(dir string, secs []section) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range secs {
		if s.trace == nil {
			continue
		}
		var buf bytes.Buffer
		if err := s.trace.WriteChrome(&buf); err != nil {
			return fmt.Errorf("trace %s: %w", s.id, err)
		}
		if err := os.WriteFile(filepath.Join(dir, s.id+".json"), buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}
