package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dataai/internal/experiments"
)

// goldenIDs is the experiment set the golden test runs. Under the race
// detector the long E16 recall/cost sweep (a minute of brute-force
// scans before the ~10x race slowdown) is excluded; every other
// experiment stays in both modes.
func goldenIDs() []string {
	ids := experiments.IDs()
	if !raceEnabled {
		return ids
	}
	out := ids[:0]
	for _, id := range ids {
		if id != "E16" {
			out = append(out, id)
		}
	}
	return out
}

// TestParallelOutputMatchesSerial is the golden determinism gate for
// the concurrent benchall: running every experiment at -parallel 8
// must produce byte-identical stdout, stderr, and exit code to the
// serial run. Experiments fan out internally too (vecdb sharded scans,
// embed batches), so this exercises the whole stack's determinism
// contract, not just the output buffering.
func TestParallelOutputMatchesSerial(t *testing.T) {
	ids := goldenIDs()
	var serialOut, serialErr bytes.Buffer
	serialCode := runAll(ids, 1, &serialOut, &serialErr, "", "")
	var parOut, parErr bytes.Buffer
	parCode := runAll(ids, 8, &parOut, &parErr, "", "")

	if parCode != serialCode {
		t.Errorf("exit code: parallel %d, serial %d", parCode, serialCode)
	}
	if serialErr.Len() != 0 || parErr.Len() != 0 {
		t.Errorf("experiments failed: serial stderr %q, parallel stderr %q",
			serialErr.String(), parErr.String())
	}
	if !bytes.Equal(parOut.Bytes(), serialOut.Bytes()) {
		t.Fatalf("parallel stdout differs from serial:\n%s",
			firstDiff(serialOut.String(), parOut.String()))
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %s\n  parallel: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length mismatch: serial %d lines, parallel %d lines", len(al), len(bl))
}

// TestRunAllValidatesFailure: a failing experiment id inside runAll
// (reachable only if validation were bypassed) reports exit code 1 and
// writes its error to stderr without disturbing other sections.
func TestRunAllUnknownIDFails(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runAll([]string{"E1", "EX"}, 2, &out, &errOut, "", "")
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "EX failed:") {
		t.Errorf("stderr %q lacks EX failure", errOut.String())
	}
	if !strings.HasPrefix(out.String(), "=== E1: ") {
		t.Errorf("stdout %q lacks E1 section", out.String())
	}
	if !strings.Contains(out.String(), "=== EX: \n") {
		t.Errorf("stdout %q lacks EX header", out.String())
	}
}

// TestJSONAndTraceSinks runs one cheap experiment with both sinks and
// checks the files: the JSON mirrors the rendered table cells, and E23's
// trace is valid JSON (Perfetto-loadable Chrome events).
func TestJSONAndTraceSinks(t *testing.T) {
	if testing.Short() {
		t.Skip("E23 run in -short mode")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "results.json")
	traceDir := filepath.Join(dir, "traces")
	var out, errOut bytes.Buffer
	if code := runAll([]string{"E23"}, 1, &out, &errOut, jsonPath, traceDir); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var results []jsonResult
	if err := json.Unmarshal(raw, &results); err != nil {
		t.Fatalf("results.json invalid: %v", err)
	}
	if len(results) != 1 || results[0].ID != "E23" || results[0].Failed {
		t.Fatalf("results = %+v", results)
	}
	if len(results[0].Tables) != 2 {
		t.Fatalf("E23 tables = %d, want main + breakdown", len(results[0].Tables))
	}
	// Every JSON cell appears verbatim in the text rendering.
	for _, cell := range results[0].Tables[0].Rows[0] {
		if !strings.Contains(out.String(), cell) {
			t.Errorf("JSON cell %q missing from text output", cell)
		}
	}

	traceRaw, err := os.ReadFile(filepath.Join(traceDir, "E23.json"))
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceRaw, &trace); err != nil {
		t.Fatalf("E23 trace invalid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("E23 trace has no events")
	}
}
