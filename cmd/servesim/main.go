// Command servesim runs the LLM-serving simulator on a synthetic trace and
// prints latency/throughput/goodput for a chosen scheduler configuration.
//
// Usage:
//
//	servesim -policy continuous -n 400 -rate 50
//	servesim -policy chunked -chunk 128
//	servesim -policy disagg -prefill 2 -decode 2
//	servesim -policy static -batch 16
//	servesim -policy routed -instances 4 -router breaker-aware -faults severe
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dataai/internal/metrics"
	"dataai/internal/serving"
	"dataai/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servesim: ")
	policy := flag.String("policy", "continuous", "static | continuous | chunked | disagg | routed")
	n := flag.Int("n", 400, "number of requests")
	rate := flag.Float64("rate", 50, "arrival rate (req/s)")
	seed := flag.Int64("seed", 1, "trace seed")
	batch := flag.Int("batch", 16, "static batch size")
	chunk := flag.Int("chunk", 128, "chunked prefill chunk tokens")
	prefill := flag.Int("prefill", 2, "disagg: prefill GPUs")
	decode := flag.Int("decode", 2, "disagg: decode GPUs")
	instances := flag.Int("instances", 4, "routed: cluster instance count")
	router := flag.String("router", "round-robin", "routed: round-robin | cache-aware | breaker-aware")
	faultsArg := flag.String("faults", "none", "routed: cluster fault plan (none | medium | severe)")
	faultSeed := flag.Uint64("fault-seed", 7, "routed: fault plan seed")
	ttftSLO := flag.Float64("slo-ttft", 1000, "TTFT SLO (ms)")
	tbtSLO := flag.Float64("slo-tbt", 12, "TBT SLO (ms)")
	flag.Parse()

	reqs, err := workload.Generate(workload.DefaultTrace(*seed, *n, *rate))
	if err != nil {
		log.Fatal(err)
	}
	gpu := serving.DefaultGPU()

	var rep *serving.Report
	var routed *serving.RoutedReport
	switch *policy {
	case "static":
		rep, err = serving.RunStatic(gpu, reqs, *batch)
	case "continuous":
		rep, err = serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{})
	case "chunked":
		rep, err = serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{ChunkTokens: *chunk})
	case "disagg":
		rep, err = serving.RunDisaggregated(gpu, reqs, serving.DisaggOpts{
			PrefillGPUs: *prefill, DecodeGPUs: *decode,
			TransferMSPerToken: 0.005, OverlapTransfer: true,
		})
	case "routed":
		var pol serving.RouterPolicy
		switch *router {
		case "round-robin":
			pol = serving.RoundRobin
		case "cache-aware":
			pol = serving.CacheAware
		case "breaker-aware":
			pol = serving.BreakerAware
		default:
			log.Fatalf("unknown router %q", *router)
		}
		var plan *serving.FaultPlan
		switch *faultsArg {
		case "none":
		case "medium":
			plan = serving.MediumFaultPlan(*faultSeed)
		case "severe":
			plan = serving.SevereFaultPlan(*faultSeed)
		default:
			log.Fatalf("unknown fault plan %q", *faultsArg)
		}
		routed, err = serving.RunRoutedFaults(gpu, reqs, *instances, pol, serving.ContinuousOpts{ChunkTokens: *chunk}, plan)
		if routed != nil {
			rep = &routed.Report
		}
	default:
		log.Fatalf("unknown policy %q", *policy)
	}
	if err != nil {
		log.Fatal(err)
	}

	t := metrics.NewTable(fmt.Sprintf("servesim: %s (%d reqs @ %.0f/s)", *policy, *n, *rate),
		"metric", "value")
	t.AddRowf("throughput (tok/s)", rep.Throughput())
	t.AddRowf("makespan (ms)", rep.MakespanMS)
	t.AddRowf("p50 TTFT (ms)", rep.TTFT.P50())
	t.AddRowf("p95 TTFT (ms)", rep.TTFT.P95())
	t.AddRowf("p50 TBT (ms)", rep.TBT.P50())
	t.AddRowf("p95 TBT (ms)", rep.TBT.P95())
	t.AddRowf(fmt.Sprintf("goodput @ (%.0f, %.0f)ms", *ttftSLO, *tbtSLO), rep.Goodput(*ttftSLO, *tbtSLO))
	t.AddRowf("peak KV blocks", rep.PeakKVBlocks)
	t.AddRowf("rejected", rep.Rejected)
	if routed != nil {
		t.AddRowf("preemptions", routed.Preemptions)
		t.AddRowf("prefix hits/misses", fmt.Sprintf("%d/%d", routed.PrefixHits, routed.PrefixMisses))
		t.AddRowf("rerouted", routed.Rerouted)
		t.AddRowf("crashes", routed.Crashes)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
