// Command servesim runs the LLM-serving simulator on a synthetic trace and
// prints latency/throughput/goodput for a chosen scheduler configuration.
//
// Usage:
//
//	servesim -policy continuous -n 400 -rate 50
//	servesim -policy chunked -chunk 128
//	servesim -policy disagg -prefill 2 -decode 2
//	servesim -policy static -batch 16
//	servesim -policy routed -instances 4 -router breaker-aware -faults severe
//	servesim -policy routed -spec multi-tenant -admission reject -sched priority
//	servesim -policy routed -faults severe -trace out.json -parallel 8
//	servesim -policy routed -faults severe -domains 4 -ckpt-every 8 -migrate
//	servesim -policy routed -faults severe -decisions -counterfactual-k 2 -regret-top 5
//	servesim -sweep -parallel 8
//
// The recovery flags drive the crash-survivable serving stack: -domains R
// overlays correlated fault domains (racks of R instances crash together,
// with a post-crash overload cascade on survivors) on the chosen fault
// plan, -ckpt-every K checkpoints decode state every K mixed iterations so
// crash-rerouted sequences resume from the host-side store instead of
// re-prefilling from token zero, and -migrate turns on the periodic live
// migration scan that drains long sequences off distressed instances.
//
// -trace writes the run's request timeline as Chrome trace-event JSON
// (load it at https://ui.perfetto.dev). The trace is checked against the
// structural invariants in internal/obs before it is written. -parallel N
// runs N identical replicas concurrently and verifies their traces are
// byte-identical — the simulator's determinism contract — before emitting
// replica 0's bytes.
//
// -spec multi-tenant swaps the single anonymous stream for the canonical
// three-tenant mix (workload.DefaultMultiTenant): an interactive "chat"
// tenant plus two bursty batch tenants. -admission picks the router's
// per-tenant token-bucket policy (none | reject | queue, buckets weighted
// by each tenant's purchased rate fraction) and -sched the batch-formation
// order (fcfs | priority | sjf; priority and sjf admit interactive
// sequences first and may preempt a batch-class slot for them). With a
// multi-tenant spec the report adds interactive-class latency, per-tenant
// admission/service rows, and the weighted Jain fairness index.
//
// -decisions records the router's per-decision log (request, scored
// candidates, chosen instance); with -trace it also annotates each
// request's span with its decision seq and verifies the decision
// invariants. -counterfactual-k K prices every decision by replaying the
// identical run with that one decision forced to each rank in [2, K]
// (all other decisions re-decided live) and reports per-decision regret:
// the mean-TTFT and goodput delta the recorded choice saved. -regret-top
// N bounds the printed most-expensive-decisions table; -parallel N fans
// the replay batch over N workers with byte-identical output.
//
// -sweep runs the routed configuration over the full router × fault-plan
// × load grid (27 cells) via sim.Sweep and prints one labeled row per
// cell. -parallel N runs N cells concurrently; because every cell owns
// its engine and writes only its own output slot, the printed bytes are
// identical at any worker count (scripts/check.sh diffs serial vs 8).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"

	"dataai/internal/metrics"
	"dataai/internal/obs"
	"dataai/internal/par"
	"dataai/internal/serving"
	"dataai/internal/sim"
	"dataai/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servesim: ")
	policy := flag.String("policy", "continuous", "static | continuous | chunked | disagg | routed")
	n := flag.Int("n", 400, "number of requests")
	rate := flag.Float64("rate", 50, "arrival rate (req/s)")
	seed := flag.Int64("seed", 1, "trace seed")
	batch := flag.Int("batch", 16, "static batch size")
	chunk := flag.Int("chunk", 128, "chunked prefill chunk tokens")
	prefill := flag.Int("prefill", 2, "disagg: prefill GPUs")
	decode := flag.Int("decode", 2, "disagg: decode GPUs")
	instances := flag.Int("instances", 4, "routed: cluster instance count")
	router := flag.String("router", "round-robin", "routed: round-robin | cache-aware | breaker-aware")
	faultsArg := flag.String("faults", "none", "routed: cluster fault plan (none | medium | severe)")
	faultSeed := flag.Uint64("fault-seed", 7, "routed: fault plan seed")
	domains := flag.Int("domains", 0, "routed: rack size for correlated fault domains (0 = independent draws)")
	migrate := flag.Bool("migrate", false, "routed: enable live session migration off distressed instances")
	ckptEvery := flag.Int("ckpt-every", 0, "routed: checkpoint decode state every K mixed iterations (0 = off)")
	spec := flag.String("spec", "", `workload spec: "" = single anonymous stream | multi-tenant`)
	admission := flag.String("admission", "none", "routed: per-tenant token-bucket admission (none | reject | queue)")
	sched := flag.String("sched", "fcfs", "batch formation order (fcfs | priority | sjf)")
	ttftSLO := flag.Float64("slo-ttft", 1000, "TTFT SLO (ms)")
	tbtSLO := flag.Float64("slo-tbt", 12, "TBT SLO (ms)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this path")
	replicas := flag.Int("parallel", 1, "with -trace: identical replicas to run concurrently for the byte-identity self-check; with -sweep: grid worker count; with -counterfactual-k: replay worker count")
	sweep := flag.Bool("sweep", false, "run the routed router×faults×load grid instead of a single configuration")
	decisions := flag.Bool("decisions", false, "routed: record the per-decision routing log (with -trace, annotate request spans and check the decision invariants)")
	counterK := flag.Int("counterfactual-k", 0, "routed: price every routing decision by counterfactual replay against ranks 2..K (0 = off, minimum 2)")
	regretTop := flag.Int("regret-top", 10, "with -counterfactual-k: list the N most expensive decisions")
	flag.Parse()

	if (*decisions || *counterK != 0) && *policy != "routed" {
		log.Fatalf("-decisions and -counterfactual-k need -policy routed (decisions live at the router)")
	}
	if *counterK != 0 && *counterK < 2 {
		log.Fatalf("-counterfactual-k %d: need at least 2 (rank 1 is the recorded choice)", *counterK)
	}
	if *counterK != 0 && *tracePath != "" {
		log.Fatal("-counterfactual-k does not combine with -trace (the replay batch runs untraced)")
	}

	if *sweep {
		if err := runSweep(os.Stdout, *seed, *n, *instances, *chunk, *faultSeed,
			*replicas, *ttftSLO, *tbtSLO); err != nil {
			log.Fatal(err)
		}
		return
	}

	var reqs []workload.Request
	var weights map[string]float64 // tenant → purchased rate fraction
	var err error
	switch *spec {
	case "":
		reqs, err = workload.Generate(workload.DefaultTrace(*seed, *n, *rate))
	case "multi-tenant":
		ws := workload.DefaultMultiTenant(*seed, *n, *rate)
		weights = make(map[string]float64, len(ws.Clients))
		for _, c := range ws.Clients {
			weights[c.TenantID] = c.RateFraction
		}
		reqs, err = workload.GenerateSpec(ws)
	default:
		log.Fatalf("unknown spec %q (want \"\" or multi-tenant)", *spec)
	}
	if err != nil {
		log.Fatal(err)
	}

	var schedPol serving.SchedPolicy
	switch *sched {
	case "fcfs":
		schedPol = serving.SchedFCFS
	case "priority":
		schedPol = serving.SchedPriority
	case "sjf":
		schedPol = serving.SchedSJF
	default:
		log.Fatalf("unknown sched %q (want fcfs, priority, or sjf)", *sched)
	}
	preempt := schedPol != serving.SchedFCFS
	if preempt && (*policy == "static" || *policy == "disagg") {
		log.Fatalf("-sched %s needs a continuous-batching policy (continuous, chunked, or routed)", *sched)
	}

	// The bucket charges prompt+output trace tokens; these demo allowances
	// match E25 (a burst of ~half a second of cluster output, sustained
	// refill just under the saturation rate), scaled per tenant by its
	// purchased fraction.
	adm := serving.AdmissionConfig{}
	switch *admission {
	case "none":
	case "reject", "queue":
		adm = serving.AdmissionConfig{
			Policy:       serving.AdmitReject,
			BurstTokens:  30000,
			RefillPerSec: 36000,
			Weights:      weights,
		}
		if *admission == "queue" {
			adm.Policy = serving.AdmitQueue
			adm.MaxQueueMS = 2000
		}
		if *policy != "routed" {
			log.Fatalf("-admission %s needs -policy routed (admission lives at the router)", *admission)
		}
	default:
		log.Fatalf("unknown admission %q (want none, reject, or queue)", *admission)
	}
	gpu := serving.DefaultGPU()

	runOnce := func(tr *obs.Tracer, dl *obs.DecisionLog, force *serving.ForcedChoice) (*serving.Report, *serving.RoutedReport, error) {
		switch *policy {
		case "static":
			if tr != nil {
				return nil, nil, fmt.Errorf("-trace is not supported for the static policy (no event engine)")
			}
			rep, err := serving.RunStatic(gpu, reqs, *batch)
			return rep, nil, err
		case "continuous":
			rep, err := serving.RunContinuous(gpu, reqs,
				serving.ContinuousOpts{Sched: schedPol, PreemptBatch: preempt, Trace: tr})
			return rep, nil, err
		case "chunked":
			rep, err := serving.RunContinuous(gpu, reqs,
				serving.ContinuousOpts{ChunkTokens: *chunk, Sched: schedPol, PreemptBatch: preempt, Trace: tr})
			return rep, nil, err
		case "disagg":
			rep, err := serving.RunDisaggregated(gpu, reqs, serving.DisaggOpts{
				PrefillGPUs: *prefill, DecodeGPUs: *decode,
				TransferMSPerToken: 0.005, OverlapTransfer: true, Trace: tr,
			})
			return rep, nil, err
		case "routed":
			var pol serving.RouterPolicy
			switch *router {
			case "round-robin":
				pol = serving.RoundRobin
			case "cache-aware":
				pol = serving.CacheAware
			case "breaker-aware":
				pol = serving.BreakerAware
			default:
				return nil, nil, fmt.Errorf("unknown router %q", *router)
			}
			var plan *serving.FaultPlan
			switch *faultsArg {
			case "none":
			case "medium":
				plan = serving.MediumFaultPlan(*faultSeed)
			case "severe":
				plan = serving.SevereFaultPlan(*faultSeed)
			default:
				return nil, nil, fmt.Errorf("unknown fault plan %q", *faultsArg)
			}
			if *domains > 0 {
				if plan == nil {
					return nil, nil, fmt.Errorf("-domains needs a fault plan (-faults medium|severe)")
				}
				plan.Correlate(*domains)
			}
			rec := serving.RecoveryConfig{CkptEveryIters: *ckptEvery, Migrate: *migrate}
			routed, err := serving.RunRoutedAdmission(gpu, reqs, *instances, pol,
				serving.ContinuousOpts{ChunkTokens: *chunk, Sched: schedPol, PreemptBatch: preempt,
					Trace: tr, Decisions: dl, Force: force},
				plan, rec, adm)
			if routed != nil {
				return &routed.Report, routed, err
			}
			return nil, nil, err
		default:
			return nil, nil, fmt.Errorf("unknown policy %q", *policy)
		}
	}

	var rep *serving.Report
	var routed *serving.RoutedReport
	var dlog *obs.DecisionLog
	switch {
	case *counterK >= 2:
		// Counterfactual pricing: the baseline run records the decision
		// log, then every decision is replayed forced to each rank in
		// [2, K] and priced against the baseline (see serving.ReplayRegret).
		routed, err = serving.ReplayRegret(
			func(dl *obs.DecisionLog, force *serving.ForcedChoice) (*serving.RoutedReport, error) {
				_, r, err := runOnce(nil, dl, force)
				return r, err
			},
			serving.ReplayConfig{MaxRank: *counterK, Workers: *replicas,
				TTFTSLOms: *ttftSLO, TBTSLOms: *tbtSLO, TopN: *regretTop})
		if err != nil {
			log.Fatal(err)
		}
		rep = &routed.Report
	case *tracePath == "":
		if *decisions {
			dlog = obs.NewDecisionLog()
		}
		rep, routed, err = runOnce(nil, dlog, nil)
		if err != nil {
			log.Fatal(err)
		}
	default:
		rep, routed, err = runTraced(runOnce, *tracePath, *replicas, *decisions)
		if err != nil {
			log.Fatal(err)
		}
	}

	t := metrics.NewTable(fmt.Sprintf("servesim: %s (%d reqs @ %.0f/s)", *policy, *n, *rate),
		"metric", "value")
	t.AddRowf("throughput (tok/s)", rep.Throughput())
	t.AddRowf("makespan (ms)", rep.MakespanMS)
	t.AddRowf("p50 TTFT (ms)", rep.TTFT.P50())
	t.AddRowf("p95 TTFT (ms)", rep.TTFT.P95())
	t.AddRowf("p50 TBT (ms)", rep.TBT.P50())
	t.AddRowf("p95 TBT (ms)", rep.TBT.P95())
	t.AddRowf(fmt.Sprintf("goodput @ (%.0f, %.0f)ms", *ttftSLO, *tbtSLO), rep.Goodput(*ttftSLO, *tbtSLO))
	t.AddRowf("peak KV blocks", rep.PeakKVBlocks)
	t.AddRowf("rejected", rep.Rejected)
	if *spec == "multi-tenant" {
		inter := rep.ClassTTFT(workload.Interactive)
		t.AddRowf("interactive p99 TTFT (ms)", inter.P99())
		t.AddRowf(fmt.Sprintf("interactive attain @ %.0fms", *ttftSLO), inter.FractionBelow(*ttftSLO))
		t.AddRowf("batch output tok", rep.ClassOutputTokens(workload.Batch))
	}
	if dlog != nil {
		t.AddRowf("decisions recorded", dlog.Len())
	}
	if routed != nil {
		t.AddRowf("preemptions", routed.Preemptions)
		t.AddRowf("prefix hits/misses", fmt.Sprintf("%d/%d", routed.PrefixHits, routed.PrefixMisses))
		t.AddRowf("rerouted", routed.Rerouted)
		t.AddRowf("crashes", routed.Crashes)
		if *ckptEvery > 0 || *migrate {
			t.AddRowf("wasted recompute (tok)", routed.WastedRecomputeTokens)
			t.AddRowf("resumed from ckpt", routed.ResumedFromCkpt)
			t.AddRowf("migrations", routed.Migrations)
		}
		if adm.Policy != serving.AdmitAll {
			t.AddRowf("adm rejected / delayed",
				fmt.Sprintf("%d/%d", routed.AdmissionRejected, routed.AdmissionDelayed))
		}
		if len(routed.Tenants) > 0 {
			xs := make([]float64, 0, len(routed.Tenants))
			ws := make([]float64, 0, len(routed.Tenants))
			for _, ts := range routed.Tenants {
				t.AddRowf("tenant "+ts.Tenant, fmt.Sprintf(
					"admitted %d rejected %d served %d output tok %d",
					ts.Admitted, ts.AdmissionRejected, ts.Served, ts.OutputTokens))
				xs = append(xs, float64(ts.OutputTokens))
				ws = append(ws, weights[ts.Tenant])
			}
			t.AddRowf("jain (weighted by paid share)", metrics.JainWeighted(xs, ws))
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if routed != nil && routed.Regret != nil {
		if err := renderRegret(os.Stdout, routed.Regret); err != nil {
			log.Fatal(err)
		}
	}
}

// renderRegret prints the counterfactual-replay summary and the
// most-expensive-decisions table. Both are pure functions of the regret
// summary, which ReplayRegret guarantees is identical at every
// -parallel count.
func renderRegret(w io.Writer, reg *serving.RegretSummary) error {
	t := metrics.NewTable(
		fmt.Sprintf("decision regret (counterfactual replay, ranks 2..%d)", reg.MaxRank),
		"metric", "value")
	t.AddRowf("decisions / replays", fmt.Sprintf("%d/%d", reg.Decisions, reg.Replays))
	t.AddRowf("total regret (mean-TTFT ms)", reg.TotalRegretMS)
	rerouteShare := 0.0
	if reg.TotalRegretMS > 0 {
		rerouteShare = reg.RerouteRegretMS / reg.TotalRegretMS
	}
	t.AddRowf("reroute-decision share", rerouteShare)
	t.AddRowf(fmt.Sprintf("goodput regret @ (%.0f, %.0f)ms", reg.TTFTSLOms, reg.TBTSLOms),
		reg.TotalGoodputRegret)
	t.AddRowf("improvable decisions", reg.Improvable)
	t.AddRowf("top-10% regret share", reg.TopShare)
	if err := t.Render(w); err != nil {
		return err
	}
	top := metrics.NewTable(fmt.Sprintf("top %d decisions by regret", len(reg.Top)),
		"seq", "t (ms)", "kind", "request", "chosen", "regret (ms)", "best Δ (ms)", "goodput Δ")
	for _, dr := range reg.Top {
		d := dr.Decision
		top.AddRowf(d.Seq, d.AtMS, d.Kind, d.ReqID, d.Chosen,
			dr.RegretMS, dr.BestDeltaMS, dr.GoodputRegret)
	}
	return top.Render(w)
}

// runSweep runs the routed configuration over every cell of the
// router-policy × fault-plan × load grid with sim.Sweep and writes one
// labeled metrics row per cell, in grid order. Each cell generates its
// own trace (same seed, its own arrival rate) and runs on its own
// engine, so the output is a pure function of the flags: serial and
// -parallel 8 runs print byte-identical rows.
func runSweep(w io.Writer, seed int64, n, instances, chunk int, faultSeed uint64, workers int, ttftSLO, tbtSLO float64) error {
	grid := sim.Grid{Dims: []sim.Dim{
		{Name: "router", Values: []string{"round-robin", "cache-aware", "breaker-aware"}},
		{Name: "faults", Values: []string{"none", "medium", "severe"}},
		{Name: "load", Values: []string{"25", "50", "100"}},
	}}
	policies := map[string]serving.RouterPolicy{
		"round-robin":   serving.RoundRobin,
		"cache-aware":   serving.CacheAware,
		"breaker-aware": serving.BreakerAware,
	}
	gpu := serving.DefaultGPU()
	type cellOut struct {
		line string
		err  error
	}
	cells := sim.Sweep(grid, workers, func(cell int, coords []int) cellOut {
		rate, err := strconv.ParseFloat(grid.Value(2, cell), 64)
		if err != nil {
			return cellOut{err: err}
		}
		reqs, err := workload.Generate(workload.DefaultTrace(seed, n, rate))
		if err != nil {
			return cellOut{err: err}
		}
		var plan *serving.FaultPlan
		switch grid.Value(1, cell) {
		case "medium":
			plan = serving.MediumFaultPlan(faultSeed)
		case "severe":
			plan = serving.SevereFaultPlan(faultSeed)
		}
		routed, err := serving.RunRoutedFaults(gpu, reqs, instances,
			policies[grid.Value(0, cell)], serving.ContinuousOpts{ChunkTokens: chunk}, plan)
		if err != nil {
			return cellOut{err: err}
		}
		rep := &routed.Report
		return cellOut{line: fmt.Sprintf(
			"%-52s thpt=%8.1f tok/s  p50ttft=%8.2f ms  p95tbt=%7.2f ms  goodput=%5.3f  rejected=%4d  crashes=%3d\n",
			grid.Label(cell), rep.Throughput(), rep.TTFT.P50(), rep.TBT.P95(),
			rep.Goodput(ttftSLO, tbtSLO), rep.Rejected, routed.Crashes)}
	})
	// The header deliberately omits the worker count: the sweep output is
	// a pure function of the simulation flags, diffable across -parallel.
	fmt.Fprintf(w, "servesim sweep: %d cells (%d reqs each, %d instances, chunk %d)\n",
		grid.Cells(), n, instances, chunk)
	for cell, c := range cells {
		if c.err != nil {
			return fmt.Errorf("cell %d (%s): %w", cell, grid.Label(cell), c.err)
		}
		if _, err := io.WriteString(w, c.line); err != nil {
			return err
		}
	}
	return nil
}

// runTraced runs `replicas` identical traced replicas concurrently,
// verifies every replica exported byte-identical trace JSON and that the
// trace passes the structural invariant checker, then writes replica 0's
// bytes to path. With decisions on, every replica records its own
// decision log, which the tracer attachment folds into both the span
// args and the invariant check.
func runTraced(runOnce func(*obs.Tracer, *obs.DecisionLog, *serving.ForcedChoice) (*serving.Report, *serving.RoutedReport, error), path string, replicas int, decisions bool) (*serving.Report, *serving.RoutedReport, error) {
	if replicas < 1 {
		replicas = 1
	}
	type replica struct {
		rep    *serving.Report
		routed *serving.RoutedReport
		trace  []byte
		err    error
	}
	runs := par.Map(replicas, replicas, func(i int) replica {
		tr := obs.NewTracer()
		var dl *obs.DecisionLog
		if decisions {
			dl = obs.NewDecisionLog()
		}
		rep, routed, err := runOnce(tr, dl, nil)
		if err != nil {
			return replica{err: err}
		}
		if err := tr.Check(); err != nil {
			return replica{err: fmt.Errorf("trace invariants: %w", err)}
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			return replica{err: err}
		}
		return replica{rep: rep, routed: routed, trace: buf.Bytes()}
	})
	for i, r := range runs {
		if r.err != nil {
			return nil, nil, fmt.Errorf("replica %d: %w", i, r.err)
		}
		if !bytes.Equal(r.trace, runs[0].trace) {
			return nil, nil, fmt.Errorf("determinism violation: replica %d trace differs from replica 0", i)
		}
	}
	if err := os.WriteFile(path, runs[0].trace, 0o644); err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "servesim: wrote %s (%d bytes, %d replica(s) byte-identical)\n",
		path, len(runs[0].trace), replicas)
	return runs[0].rep, runs[0].routed, nil
}
