// Command servesim runs the LLM-serving simulator on a synthetic trace and
// prints latency/throughput/goodput for a chosen scheduler configuration.
//
// Usage:
//
//	servesim -policy continuous -n 400 -rate 50
//	servesim -policy chunked -chunk 128
//	servesim -policy disagg -prefill 2 -decode 2
//	servesim -policy static -batch 16
//	servesim -policy routed -instances 4 -router breaker-aware -faults severe
//	servesim -policy routed -faults severe -trace out.json -parallel 8
//
// -trace writes the run's request timeline as Chrome trace-event JSON
// (load it at https://ui.perfetto.dev). The trace is checked against the
// structural invariants in internal/obs before it is written. -parallel N
// runs N identical replicas concurrently and verifies their traces are
// byte-identical — the simulator's determinism contract — before emitting
// replica 0's bytes.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"dataai/internal/metrics"
	"dataai/internal/obs"
	"dataai/internal/par"
	"dataai/internal/serving"
	"dataai/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servesim: ")
	policy := flag.String("policy", "continuous", "static | continuous | chunked | disagg | routed")
	n := flag.Int("n", 400, "number of requests")
	rate := flag.Float64("rate", 50, "arrival rate (req/s)")
	seed := flag.Int64("seed", 1, "trace seed")
	batch := flag.Int("batch", 16, "static batch size")
	chunk := flag.Int("chunk", 128, "chunked prefill chunk tokens")
	prefill := flag.Int("prefill", 2, "disagg: prefill GPUs")
	decode := flag.Int("decode", 2, "disagg: decode GPUs")
	instances := flag.Int("instances", 4, "routed: cluster instance count")
	router := flag.String("router", "round-robin", "routed: round-robin | cache-aware | breaker-aware")
	faultsArg := flag.String("faults", "none", "routed: cluster fault plan (none | medium | severe)")
	faultSeed := flag.Uint64("fault-seed", 7, "routed: fault plan seed")
	ttftSLO := flag.Float64("slo-ttft", 1000, "TTFT SLO (ms)")
	tbtSLO := flag.Float64("slo-tbt", 12, "TBT SLO (ms)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this path")
	replicas := flag.Int("parallel", 1, "with -trace: identical replicas to run concurrently for the byte-identity self-check")
	flag.Parse()

	reqs, err := workload.Generate(workload.DefaultTrace(*seed, *n, *rate))
	if err != nil {
		log.Fatal(err)
	}
	gpu := serving.DefaultGPU()

	runOnce := func(tr *obs.Tracer) (*serving.Report, *serving.RoutedReport, error) {
		switch *policy {
		case "static":
			if tr != nil {
				return nil, nil, fmt.Errorf("-trace is not supported for the static policy (no event engine)")
			}
			rep, err := serving.RunStatic(gpu, reqs, *batch)
			return rep, nil, err
		case "continuous":
			rep, err := serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{Trace: tr})
			return rep, nil, err
		case "chunked":
			rep, err := serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{ChunkTokens: *chunk, Trace: tr})
			return rep, nil, err
		case "disagg":
			rep, err := serving.RunDisaggregated(gpu, reqs, serving.DisaggOpts{
				PrefillGPUs: *prefill, DecodeGPUs: *decode,
				TransferMSPerToken: 0.005, OverlapTransfer: true, Trace: tr,
			})
			return rep, nil, err
		case "routed":
			var pol serving.RouterPolicy
			switch *router {
			case "round-robin":
				pol = serving.RoundRobin
			case "cache-aware":
				pol = serving.CacheAware
			case "breaker-aware":
				pol = serving.BreakerAware
			default:
				return nil, nil, fmt.Errorf("unknown router %q", *router)
			}
			var plan *serving.FaultPlan
			switch *faultsArg {
			case "none":
			case "medium":
				plan = serving.MediumFaultPlan(*faultSeed)
			case "severe":
				plan = serving.SevereFaultPlan(*faultSeed)
			default:
				return nil, nil, fmt.Errorf("unknown fault plan %q", *faultsArg)
			}
			routed, err := serving.RunRoutedFaults(gpu, reqs, *instances, pol,
				serving.ContinuousOpts{ChunkTokens: *chunk, Trace: tr}, plan)
			if routed != nil {
				return &routed.Report, routed, err
			}
			return nil, nil, err
		default:
			return nil, nil, fmt.Errorf("unknown policy %q", *policy)
		}
	}

	var rep *serving.Report
	var routed *serving.RoutedReport
	if *tracePath == "" {
		rep, routed, err = runOnce(nil)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rep, routed, err = runTraced(runOnce, *tracePath, *replicas)
		if err != nil {
			log.Fatal(err)
		}
	}

	t := metrics.NewTable(fmt.Sprintf("servesim: %s (%d reqs @ %.0f/s)", *policy, *n, *rate),
		"metric", "value")
	t.AddRowf("throughput (tok/s)", rep.Throughput())
	t.AddRowf("makespan (ms)", rep.MakespanMS)
	t.AddRowf("p50 TTFT (ms)", rep.TTFT.P50())
	t.AddRowf("p95 TTFT (ms)", rep.TTFT.P95())
	t.AddRowf("p50 TBT (ms)", rep.TBT.P50())
	t.AddRowf("p95 TBT (ms)", rep.TBT.P95())
	t.AddRowf(fmt.Sprintf("goodput @ (%.0f, %.0f)ms", *ttftSLO, *tbtSLO), rep.Goodput(*ttftSLO, *tbtSLO))
	t.AddRowf("peak KV blocks", rep.PeakKVBlocks)
	t.AddRowf("rejected", rep.Rejected)
	if routed != nil {
		t.AddRowf("preemptions", routed.Preemptions)
		t.AddRowf("prefix hits/misses", fmt.Sprintf("%d/%d", routed.PrefixHits, routed.PrefixMisses))
		t.AddRowf("rerouted", routed.Rerouted)
		t.AddRowf("crashes", routed.Crashes)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runTraced runs `replicas` identical traced replicas concurrently,
// verifies every replica exported byte-identical trace JSON and that the
// trace passes the structural invariant checker, then writes replica 0's
// bytes to path.
func runTraced(runOnce func(*obs.Tracer) (*serving.Report, *serving.RoutedReport, error), path string, replicas int) (*serving.Report, *serving.RoutedReport, error) {
	if replicas < 1 {
		replicas = 1
	}
	type replica struct {
		rep    *serving.Report
		routed *serving.RoutedReport
		trace  []byte
		err    error
	}
	runs := par.Map(replicas, replicas, func(i int) replica {
		tr := obs.NewTracer()
		rep, routed, err := runOnce(tr)
		if err != nil {
			return replica{err: err}
		}
		if err := tr.Check(); err != nil {
			return replica{err: fmt.Errorf("trace invariants: %w", err)}
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			return replica{err: err}
		}
		return replica{rep: rep, routed: routed, trace: buf.Bytes()}
	})
	for i, r := range runs {
		if r.err != nil {
			return nil, nil, fmt.Errorf("replica %d: %w", i, r.err)
		}
		if !bytes.Equal(r.trace, runs[0].trace) {
			return nil, nil, fmt.Errorf("determinism violation: replica %d trace differs from replica 0", i)
		}
	}
	if err := os.WriteFile(path, runs[0].trace, 0o644); err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "servesim: wrote %s (%d bytes, %d replica(s) byte-identical)\n",
		path, len(runs[0].trace), replicas)
	return runs[0].rep, runs[0].routed, nil
}
