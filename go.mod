module dataai

go 1.22
